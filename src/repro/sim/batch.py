"""Batch execution of scenarios: a persistent worker pool, cost-aware
scheduling and a two-tier outcome cache.

The :class:`BatchRunner` is the execution layer between the declarative
scenario specs (:mod:`repro.scenarios`) and the per-run engine
(:mod:`repro.sim.engine`).  Given a list of specs it

* deduplicates identical specs (figure grids often repeat a run),
* serves previously computed results from a two-tier cache -- an
  in-process LRU over an on-disk :class:`DiskCache` -- keyed by the spec
  fingerprint (which folds in the queue-kernel and schema versions, so
  code or storage-format changes invalidate stale entries),
* fans the remaining runs out over a **persistent**
  :class:`~concurrent.futures.ProcessPoolExecutor` that is created
  lazily on first use and reused across ``run()`` calls, so a whole
  ``hipster-repro all`` invocation pays the pool spawn (and the worker
  warm-start imports) once instead of once per experiment,
* dispatches in **longest-job-first** order via ``submit`` +
  ``as_completed`` using a spec cost model calibrated against
  ``BENCH_engine.json``, with cheap specs adaptively chunked so
  inter-process overhead amortizes, and
* returns outcomes in input order (:meth:`BatchRunner.run`) or streams
  them in completion order (:meth:`BatchRunner.iter_run`, which the
  fleet layer folds node-by-node without retaining the full batch).

Completion order never affects results: every run is a pure function of
its spec (per-spec-seed determinism), so serial, per-call-pool and
persistent-pool execution are byte-identical.

Cache layout
------------
``cache_dir`` holds one ``<fingerprint>.pkl`` per outcome (written
atomically via ``os.replace``, so concurrent runners can share a
directory) plus a single append-only ``manifest.pack``.  The pack holds
``<key> <size>\\n<payload>`` records appended under an exclusive
``flock``; warm starts index it with one sequential scan instead of a
per-key ``open``/``stat`` storm, and a truncated tail (crashed writer)
is simply ignored.  Since the columnar storage overhaul a payload is a
pickled :class:`~repro.scenarios.spec.ScenarioOutcome` whose result is
a struct-of-arrays :class:`~repro.sim.records.ObservationTable` -- a
couple dozen numpy buffers per run instead of thousands of per-interval
dataclass objects, which is what made warm starts unpickle-bound.
Legacy (pre-columnar) payloads fail their storage-version check on
load and are treated as misses; the fingerprint's ``SCHEMA_VERSION``
bump keeps them from being looked up in the first place.

Because the pack is append-only, re-stored keys and version bumps
strand dead bytes in it; :meth:`DiskCache.close` opportunistically
**compacts** the pack (rewrites live records through an atomic
``os.replace``) once the dead fraction crosses a threshold.  Appenders
take the exclusive lock and re-verify the manifest inode afterwards, so
racing appenders and a compacting closer cannot lose records.

A runner should be closed when done (``close()`` or a ``with`` block)
to shut its worker pool down and give the disk cache its compaction
opportunity; a serial runner never creates a pool.

Fault tolerance
---------------
Parallel dispatch is **supervised** (:mod:`repro.sim.supervise`): a
worker crash rebuilds the pool and re-dispatches only the lost chunks
with bounded exponential backoff; a chunk that keeps dying is bisected
down to the poison spec, which is confirmed with a solo dispatch and
surfaced as a structured :class:`~repro.errors.WorkerCrashError` while
its chunk-mates' results are recovered; a hung chunk trips a watchdog
deadline derived from :func:`estimate_cost` and ends in
:class:`~repro.errors.SpecTimeoutError` instead of blocking forever;
and a pool that keeps dying degrades to in-process serial execution.
Corrupt cache entries are moved to ``<cache-dir>/quarantine/`` (with a
one-line stderr warning) instead of being deleted, so a bad disk or a
chaos run leaves evidence behind; the quarantine itself is bounded
(256 MiB / 256 entries by default, oldest evicted first) so the
evidence locker cannot grow without limit.  Completed fingerprints can
be journaled (:class:`~repro.sim.supervise.RunJournal`) for crash-safe
``--resume``.  None of this can change results: every spec is a pure
function of itself, so retried, resumed and fault-free runs are
byte-identical.
"""

from __future__ import annotations

import os
import pickle
import re
import sys
import tempfile
import zlib
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, BinaryIO, Iterable, Iterator, Sequence

from repro.errors import ExecutionError, RunInterruptedError, SpecFailedError
from repro.sim.supervise import PoolSupervisor, RetryPolicy, RunJournal

try:  # pragma: no cover - POSIX only; appends stay atomic-ish elsewhere
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - break the sim <-> scenarios cycle
    from repro.scenarios.spec import ScenarioOutcome, ScenarioSpec

#: Name of the append-only manifest inside a cache directory.
MANIFEST_NAME = "manifest.pack"

#: Subdirectory corrupt cache entries are moved to: evidence for
#: post-mortems, out of the lookup path.
QUARANTINE_DIR = "quarantine"

#: Quarantine growth bounds: total bytes and entry count.  Quarantine
#: is evidence, not an archive -- without a cap a long-lived shared
#: cache directory on flaky storage accretes corrupt blobs forever.
#: Oldest entries are evicted first once either bound is crossed.
QUARANTINE_MAX_BYTES = 256 * 2**20
QUARANTINE_MAX_ENTRIES = 256

#: Magic of checksummed per-key entries: ``reproblob1 <crc32>\n`` then
#: the pickled payload.  Bit rot that still unpickles cleanly (4 bytes
#: flipped inside a float) would otherwise serve silently wrong
#: results; the CRC turns it into a detected, quarantined miss.
#: Entries without the magic (pre-checksum caches) load unverified.
ENTRY_MAGIC = b"reproblob1"

#: Versioned cache keys look like ``s<schema>-<kernel>-<hash>`` (see
#: ``repro.scenarios.spec.cache_key_prefix``); the schema number orders
#: generations for stranded-record reclamation.
_GENERATION_RE = re.compile(r"^s(\d+)-")

#: Default capacity of the in-process LRU tier (entries); 0 disables it.
DEFAULT_MEMORY_ENTRIES = 1024

#: Size-aware companion bound: total interval observations held across
#: all LRU entries (a proxy for resident bytes -- outcomes range from a
#: ~30-interval calibration probe to a ~1400-interval paper-length day,
#: so an entry count alone is blind to an order of magnitude of memory).
#: 0 disables the size bound.
DEFAULT_MEMORY_OBSERVATIONS = 500_000

#: Compaction trigger (see :meth:`DiskCache.close`): rewrite the pack
#: when at least this many dead bytes have accumulated...
COMPACT_MIN_DEAD_BYTES = 1 << 16

#: ...and the dead bytes are at least this fraction of the pack.
COMPACT_DEAD_FRACTION = 0.5

#: Cost-model fallback calibration: per-interval cost grows roughly
#: linearly with arrivals and doubles around 20k of them; a collocated
#: SPEC batch adds ~12% at the heavy points.  These are only the
#: *defaults* -- :func:`_cost_constants` re-derives both numbers from
#: the committed ``BENCH_engine.json`` at first use, so the scheduler's
#: cost model tracks the measured engine trajectory instead of whatever
#: hardware the constants were last hand-tuned on.
ARRIVALS_COST_HALF = 20_000.0
COLLOCATION_COST_FACTOR = 1.12

#: Scheduling: target chunks per worker.  More chunks = better load
#: balance at the tail, fewer = less inter-process overhead; 4 is the
#: classic oversubscription compromise.
CHUNKS_PER_WORKER = 4


def execute_scenario(spec: "ScenarioSpec") -> "ScenarioOutcome":
    """Run one scenario in the current process."""
    return spec.run()


def execute_chunk(specs: Sequence["ScenarioSpec"]) -> list["ScenarioOutcome"]:
    """Run a chunk of scenarios in the current process (the pool's work
    item); one submission amortizes dispatch overhead over the chunk."""
    return [spec.run() for spec in specs]


def _warm_worker() -> None:
    """Pool initializer: pull the heavyweight imports (engine, factories,
    platform construction) into the worker once, not once per spec.

    Under the default ``fork`` start method children inherit the parent's
    modules and this is nearly free; under ``spawn``/``forkserver`` it
    moves the multi-hundred-ms import tax out of the first chunk."""
    import repro.scenarios.factories  # noqa: F401
    import repro.sim.engine  # noqa: F401


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------

_WORKLOAD_RPS_MEMO: dict[tuple, float] = {}


def _workload_max_rps(workload: str, params) -> float:
    """Max requests/s of a workload spec (memoized; params are frozen)."""
    memo_key = (workload, params)
    try:
        return _WORKLOAD_RPS_MEMO[memo_key]
    except KeyError:
        from repro.scenarios import factories

        rps = float(factories.build_workload(workload, params).max_load_rps)
        _WORKLOAD_RPS_MEMO[memo_key] = rps
        return rps


_COST_CONSTANTS: tuple[float, float] | None = None


def _cost_constants() -> tuple[float, float]:
    """``(arrivals_half, collocation_factor)`` for :func:`estimate_cost`.

    Derived lazily (and memoized) from the committed repo-root
    ``BENCH_engine.json``: the half-rate comes from the optimized
    intervals/sec at the two collocation-off arrival levels (the cost
    model says ``1/ips = k * (1 + arrivals / half)``, two points pin
    ``half``), the collocation factor from the off/on throughput ratios.
    Falls back to the hand-tuned module constants when the report is
    absent or degenerate -- scheduling only needs a rough ordering.
    """
    global _COST_CONSTANTS
    if _COST_CONSTANTS is not None:
        return _COST_CONSTANTS
    half = ARRIVALS_COST_HALF
    factor = COLLOCATION_COST_FACTOR
    from repro.sim import bench

    report = bench.load_report(
        Path(__file__).resolve().parents[3] / bench.BENCH_REPORT_NAME
    )
    points = (report or {}).get("points", {})
    ips: dict[tuple[int, bool], float] = {}
    for key, point in points.items():
        match = re.fullmatch(r"arrivals=(\d+)/collocation=(on|off)", key)
        if not match:
            continue
        value = point.get("optimized_intervals_per_sec", 0.0)
        if value and value > 0:
            ips[(int(match.group(1)), match.group(2) == "on")] = float(value)
    levels = sorted(a for a, collocate in ips if not collocate)
    if len(levels) >= 2:
        a1, a2 = levels[0], levels[-1]
        ratio = ips[(a1, False)] / ips[(a2, False)]
        if ratio > 1.0:
            derived = (a2 - ratio * a1) / (ratio - 1.0)
            if derived > 0:
                half = derived
    ratios = [
        ips[(a, False)] / ips[(a, True)]
        for a, collocate in ips
        if collocate and (a, False) in ips
    ]
    if ratios:
        factor = max(sum(ratios) / len(ratios), 1.0)
    _COST_CONSTANTS = (half, factor)
    return _COST_CONSTANTS


def estimate_cost(spec: "ScenarioSpec") -> float:
    """Relative execution cost of one spec, for scheduling only.

    Modelled as ``intervals x (1 + arrivals_per_interval / half) x
    collocation`` with constants calibrated from the committed
    ``BENCH_engine.json`` via :func:`_cost_constants`.  Only the
    *ordering* matters -- longest-job-first dispatch and chunk sizing --
    so a rough estimate is fine and the fallback for exotic traces is
    deliberately simple.
    """
    interval_s = float(dict(spec.engine).get("interval_s", 1.0))
    duration = spec.trace.duration_s()
    intervals = int(duration / interval_s) if interval_s > 0 else 0
    if spec.n_intervals is not None:
        intervals = min(intervals, spec.n_intervals) if intervals else spec.n_intervals
    arrivals = (
        spec.trace.mean_level()
        * _workload_max_rps(spec.workload, spec.workload_params)
        * interval_s
    )
    half, collocation_factor = _cost_constants()
    cost = max(intervals, 1) * (1.0 + arrivals / half)
    if spec.batch_jobs is not None:
        cost *= collocation_factor
    return cost


def plan_chunks(
    pending: Sequence[tuple[str, "ScenarioSpec"]], jobs: int
) -> list[list[tuple[str, "ScenarioSpec"]]]:
    """Longest-job-first dispatch plan with adaptive chunking.

    Specs are sorted by estimated cost (descending, input order breaking
    ties, so the plan is deterministic) and greedily packed into chunks
    of roughly ``total_cost / (jobs * CHUNKS_PER_WORKER)``: expensive
    specs travel alone -- one straggler must not serialize a tail of
    cheap specs behind it -- while cheap specs share a submission.
    """
    if not pending:
        return []
    costs = [estimate_cost(spec) for _, spec in pending]
    order = sorted(range(len(pending)), key=lambda i: (-costs[i], i))
    target = sum(costs) / max(1, jobs * CHUNKS_PER_WORKER)
    chunks: list[list[tuple[str, "ScenarioSpec"]]] = []
    current: list[tuple[str, "ScenarioSpec"]] = []
    current_cost = 0.0
    for i in order:
        (key, spec), cost = pending[i], costs[i]
        if current and current_cost + cost > target:
            chunks.append(current)
            current, current_cost = [], 0.0
        current.append((key, spec))
        current_cost += cost
    if current:
        chunks.append(current)
    return chunks


# ----------------------------------------------------------------------
# on-disk tier
# ----------------------------------------------------------------------


class DiskCache:
    """The on-disk outcome tier: per-key pickles plus the manifest pack.

    Shared-directory safe: per-key files are written atomically
    (``os.replace``) and pack appends happen under an exclusive
    ``flock``.  :meth:`close` opportunistically compacts the pack --
    dead bytes accumulate because the pack is append-only, so re-stored
    keys (racing appenders duplicating work) and fingerprint-version
    bumps strand superseded records in it forever otherwise.

    Compaction coexists with racing appenders through an inode check:
    every writer takes the pack lock and then verifies its file handle
    still names ``manifest.pack`` (compaction swaps the inode via
    ``os.replace``), reopening if not, so no append can land in an
    orphaned pack.
    """

    def __init__(
        self,
        cache_dir: str | Path,
        *,
        live_prefix: str | None = None,
        compact_min_dead_bytes: int = COMPACT_MIN_DEAD_BYTES,
        compact_dead_fraction: float = COMPACT_DEAD_FRACTION,
        quarantine_max_bytes: int = QUARANTINE_MAX_BYTES,
        quarantine_max_entries: int = QUARANTINE_MAX_ENTRIES,
    ):
        self.cache_dir = Path(cache_dir)
        #: Keys of the current cache-format generation start with this
        #: (see ``repro.scenarios.spec.cache_key_prefix``).  When set,
        #: close-time maintenance reclaims *retired*-generation records
        #: -- they are the latest record for their old key, so the
        #: latest-wins index alone would keep them alive forever.
        #: Retired means provably older: a key with no versioned prefix
        #: at all (the pre-columnar era) or a strictly lower schema
        #: number; keys of an equal-or-newer schema (e.g. a newer
        #: checkout sharing the directory, or a same-schema kernel
        #: variant whose ordering is unknowable) are left alone.
        #: ``None`` compacts duplicates only.
        self.live_prefix = live_prefix
        match = _GENERATION_RE.match(live_prefix) if live_prefix else None
        self._live_schema = int(match.group(1)) if match else None
        self.compact_min_dead_bytes = compact_min_dead_bytes
        self.compact_dead_fraction = compact_dead_fraction
        self.quarantine_max_bytes = quarantine_max_bytes
        self.quarantine_max_entries = quarantine_max_entries
        self.compactions = 0
        self.stranded_files_removed = 0
        self.corrupt_entries = 0
        self.quarantine_evictions = 0
        self._pack_index: dict[str, tuple[int, int]] | None = None
        self._pack_read_fh: BinaryIO | None = None

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Run the maintenance pass and drop the long-lived read handle
        (idempotent): compact the pack if it crossed the dead-bytes
        threshold, and sweep per-key pickles stranded by a cache-format
        version bump (their retired keys are never looked up again, so
        the delete-corrupt-on-detection path can never reclaim them)."""
        try:
            self._maybe_compact()
        except OSError:  # pragma: no cover - best-effort maintenance
            pass
        self._sweep_stranded_entries()
        self._drop_read_state()

    def _sweep_stranded_entries(self) -> None:
        """Delete per-key pickles of retired cache-format generations.

        Only meaningful with a ``live_prefix``; anything suffixed
        ``.pkl`` whose stem is not of the current generation is a
        cache entry no current key can ever name (compaction's pack
        counterpart of the same reclamation).
        """
        if self.live_prefix is None:
            return
        try:
            entries = list(self.cache_dir.iterdir())
        except OSError:  # pragma: no cover - vanished cache dir
            return
        for path in entries:
            if path.suffix != ".pkl" or not self._key_is_reclaimable(path.stem):
                continue
            try:
                path.unlink()
                self.stranded_files_removed += 1
            except OSError:  # pragma: no cover - racing delete
                pass

    def _drop_read_state(self) -> None:
        fh, self._pack_read_fh = self._pack_read_fh, None
        self._pack_index = None
        if fh is not None:
            try:
                fh.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    # -- paths ----------------------------------------------------------

    def entry_path(self, key: str) -> Path:
        """The per-key pickle path for a fingerprint."""
        return self.cache_dir / f"{key}.pkl"

    @property
    def manifest_path(self) -> Path:
        """The append-only manifest pack path."""
        return self.cache_dir / MANIFEST_NAME

    @property
    def quarantine_path(self) -> Path:
        """Where corrupt entries are moved (``<cache-dir>/quarantine``)."""
        return self.cache_dir / QUARANTINE_DIR

    # -- quarantine -----------------------------------------------------

    def _quarantine_file(self, path: Path) -> None:
        """Move a corrupt per-key pickle out of the lookup path."""
        target = self.quarantine_path / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:  # racing delete/unwritable dir: drop instead
            try:
                path.unlink()
            except OSError:
                return
        self.corrupt_entries += 1
        print(
            f"[cache] quarantined corrupt entry {path.name} -> {target}",
            file=sys.stderr,
        )
        self._bound_quarantine()

    def _quarantine_record(
        self, key: str, entry: tuple[int, int, int | None]
    ) -> None:
        """Preserve a corrupt manifest record's bytes for post-mortems.

        The pack record itself cannot be excised in place (the pack is
        append-only; compaction drops it later), so the payload bytes
        are copied aside and the in-memory index entry is evicted by
        the caller."""
        offset, size = entry[0], entry[1]
        target = self.quarantine_path / f"{key}.pack-record"
        try:
            with self.manifest_path.open("rb") as fh:
                fh.seek(offset)
                payload = fh.read(size)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(payload)
        except OSError:  # pragma: no cover - best-effort evidence
            pass
        self.corrupt_entries += 1
        print(
            f"[cache] quarantined corrupt manifest record {key} -> {target}",
            file=sys.stderr,
        )
        self._bound_quarantine()

    def _bound_quarantine(self) -> None:
        """Evict oldest quarantine entries past the size/count bounds.

        Best-effort (a racing eviction or an unreadable entry is
        skipped); evictions are counted for the ``[fault]`` stats line.
        """
        try:
            entries = [
                (path.stat().st_mtime, path.name, path.stat().st_size, path)
                for path in self.quarantine_path.iterdir()
                if path.is_file()
            ]
        except OSError:  # pragma: no cover - vanished quarantine dir
            return
        entries.sort()
        total = sum(size for _, _, size, _ in entries)
        while entries and (
            total > self.quarantine_max_bytes
            or len(entries) > self.quarantine_max_entries
        ):
            _, _, size, path = entries.pop(0)
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing delete
                continue
            total -= size
            self.quarantine_evictions += 1

    # -- loads ----------------------------------------------------------

    def load(self, key: str) -> "ScenarioOutcome | None":
        """The cached outcome for a key, or ``None`` (pack tier first)."""
        outcome = self._pack_load(key)
        if outcome is None:
            outcome = self._file_load(key)
        return outcome

    def _file_load(self, key: str) -> "ScenarioOutcome | None":
        """The per-key tier; a corrupt entry is quarantined on detection
        so it is never re-parsed on the next warm start (and the bytes
        survive for post-mortems).

        Checksummed entries (:data:`ENTRY_MAGIC` header) fail the CRC on
        *any* byte damage -- including bit rot that would still unpickle
        -- while headerless pre-checksum entries keep loading unverified.
        """
        from repro.scenarios.spec import ScenarioOutcome

        path = self.entry_path(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            if raw.startswith(ENTRY_MAGIC):
                header, _, payload = raw.partition(b"\n")
                crc = int(header.split()[1])
                if zlib.crc32(payload) != crc:
                    raise ValueError(f"CRC mismatch in {path.name}")
            else:
                payload = raw  # pre-checksum entry: unverified
            outcome = pickle.loads(payload)
        except Exception:  # corrupt/stale entry: quarantine
            self._quarantine_file(path)
            return None
        return outcome if isinstance(outcome, ScenarioOutcome) else None

    # -- manifest pack --------------------------------------------------

    @staticmethod
    def _scan_pack(fh: BinaryIO) -> dict[str, tuple[int, int, int | None]]:
        """Scan an open pack: key -> (payload offset, size, crc32).

        Later records win (the pack is append-only); a malformed or
        truncated tail ends the scan -- everything before it stays
        usable, which is exactly what a crashed writer leaves behind.
        Record headers are ``key size crc32`` (checksummed) or the
        pre-checksum ``key size`` (``crc32`` then ``None``: such
        records load unverified, exactly as they always did).
        """
        index: dict[str, tuple[int, int, int | None]] = {}
        file_size = os.fstat(fh.fileno()).st_size
        fh.seek(0)
        while True:
            header = fh.readline()
            if not header:
                break
            try:
                key_bytes, size_bytes, *crc_bytes = header.split()
                size = int(size_bytes)
                crc = int(crc_bytes[0]) if crc_bytes else None
                if len(crc_bytes) > 1:
                    raise ValueError(header)
            except ValueError:
                break
            offset = fh.tell()
            if size < 0 or offset + size > file_size:
                break
            index[key_bytes.decode("ascii", "replace")] = (offset, size, crc)
            fh.seek(offset + size)
        return index

    def _load_pack_index(self) -> dict[str, tuple[int, int, int | None]]:
        """The cached pack index, scanning the manifest once if needed."""
        if self._pack_index is not None:
            return self._pack_index
        try:
            with self.manifest_path.open("rb") as fh:
                index = self._scan_pack(fh)
        except OSError:
            index = {}
        self._pack_index = index
        return index

    def _pack_load(self, key: str) -> "ScenarioOutcome | None":
        """A key's outcome from the pack, stale-index safe.

        Compaction (possibly by *another* process) moves payload
        offsets, so a cached index may be stale.  A stale offset
        usually yields a failed unpickle, but with same-sized records
        it can land exactly on a different record's payload and decode
        cleanly -- so every pack hit is identity-checked against its
        key, and any mismatch or decode failure drops the cached index
        and retries once against a fresh scan.
        """
        for attempt in range(2):
            index = self._load_pack_index()
            entry = index.get(key)
            if entry is None:
                return None
            outcome = self._read_pack_entry(key, entry)
            if outcome is not None:
                return outcome
            if attempt == 0:
                # Corrupt record or stale offsets: rescan once.
                self._drop_read_state()
            else:
                # Still bad against a fresh scan: genuinely corrupt.
                # Quarantine the record bytes, evict just this key
                # (keeping the rebuilt index) and let the per-key tier
                # answer; compaction reclaims the dead pack bytes.
                self._quarantine_record(key, entry)
                index.pop(key, None)
        return None

    def _read_pack_entry(
        self, key: str, entry: tuple[int, int, int | None]
    ) -> "ScenarioOutcome | None":
        from repro.scenarios.spec import ScenarioOutcome

        offset, size, crc = entry
        try:
            # One long-lived read handle: a warm start costs one open
            # plus seeks, not an open per key.
            if self._pack_read_fh is None:
                self._pack_read_fh = self.manifest_path.open("rb")
            self._pack_read_fh.seek(offset)
            payload = self._pack_read_fh.read(size)
            if crc is not None and zlib.crc32(payload) != crc:
                return None  # bit rot: detected even if it unpickles
            outcome = pickle.loads(payload)
        except Exception:  # corrupt record: fall through to other tiers
            fh, self._pack_read_fh = self._pack_read_fh, None
            if fh is not None:
                try:
                    fh.close()
                except OSError:
                    pass
            return None
        if not isinstance(outcome, ScenarioOutcome):
            return None
        try:
            if outcome.spec.fingerprint() != key:
                return None
        except Exception:  # pragma: no cover - malformed spec payload
            return None
        return outcome

    def _open_pack_locked(self, mode: str) -> BinaryIO:
        """Open the manifest and take the exclusive lock, re-opening if
        a concurrent compaction swapped the inode in between."""
        while True:
            fh = self.manifest_path.open(mode)
            if fcntl is None:  # pragma: no cover - non-POSIX fallback
                return fh
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            except OSError:  # pragma: no cover - e.g. ENOLCK on NFS
                fh.close()
                raise
            try:
                current = (
                    os.fstat(fh.fileno()).st_ino
                    == os.stat(self.manifest_path).st_ino
                )
            except OSError:  # pragma: no cover - racing dir mutation
                current = True  # nothing better to re-open; use the handle
            if current:
                return fh
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
            fh.close()

    @staticmethod
    def _unlock(fh: BinaryIO) -> None:
        if fcntl is not None:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    # -- stores ---------------------------------------------------------

    def store_many(self, payloads: Sequence[tuple[str, bytes]]) -> None:
        """Persist pickled outcomes: per-key files plus pack appends."""
        for key, payload in payloads:
            self._file_store(key, payload)
        self._pack_append_many(payloads)

    def _file_store(self, key: str, payload: bytes) -> None:
        path = self.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic write: a crashed/parallel writer must never leave a
        # truncated pickle behind for a later run to trip over.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(ENTRY_MAGIC + b" %d\n" % zlib.crc32(payload))
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _pack_append_many(self, payloads: Sequence[tuple[str, bytes]]) -> None:
        """Append records to the manifest under one exclusive lock."""
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        index = self._load_pack_index()
        try:
            fh = self._open_pack_locked("ab")
            try:
                fh.seek(0, os.SEEK_END)
                for key, payload in payloads:
                    crc = zlib.crc32(payload)
                    fh.write(
                        f"{key} {len(payload)} {crc}\n".encode("ascii")
                    )
                    offset = fh.tell()
                    fh.write(payload)
                    index[key] = (offset, len(payload), crc)
                fh.flush()
            finally:
                self._unlock(fh)
                fh.close()
        except OSError:
            # The per-key tier already holds every outcome; losing the
            # manifest only costs the next warm start some opens.
            self._pack_index = None

    # -- compaction -----------------------------------------------------

    def dead_pack_bytes(self) -> tuple[int, int]:
        """``(dead_bytes, file_size)`` of the pack right now."""
        try:
            with self.manifest_path.open("rb") as fh:
                index = self._scan_pack(fh)
                file_size = os.fstat(fh.fileno()).st_size
        except OSError:
            return 0, 0
        return file_size - self._live_bytes(index), file_size

    def _key_is_reclaimable(self, key: str) -> bool:
        """Whether a key belongs to a provably *retired* generation.

        True only for pre-versioned (bare-hash) keys and versioned keys
        with a strictly lower schema number than ours; never for our
        own prefix or an equal/newer schema (which may be a newer build
        sharing the cache directory -- reclaiming those would wipe its
        warm cache).
        """
        if self.live_prefix is None or key.startswith(self.live_prefix):
            return False
        if self._live_schema is None:  # unparseable custom prefix
            return False
        match = _GENERATION_RE.match(key)
        if match is None:
            return True  # pre-versioned (v1-era) key
        return int(match.group(1)) < self._live_schema

    def _live_bytes(
        self, index: dict[str, tuple[int, int, int | None]]
    ) -> int:
        return sum(
            len(
                f"{key} {size}\n"
                if crc is None
                else f"{key} {size} {crc}\n"
            )
            + size
            for key, (_, size, crc) in index.items()
            if not self._key_is_reclaimable(key)
        )

    def _maybe_compact(self) -> None:
        """Rewrite the pack without its dead records, if worthwhile.

        Dead bytes are superseded records (same key appended again, by
        this or a racing runner), records stranded by a fingerprint
        version bump (foreign ``live_prefix`` -- still the latest for
        their retired key, but unreachable by any current lookup), and
        any malformed tail.  The rewrite happens to a temp file that
        atomically replaces the pack while the exclusive lock is held;
        the index is re-scanned *under the lock* so records appended by
        a racing runner since our last read are preserved.
        """
        if not self.manifest_path.exists():
            return
        fh = self._open_pack_locked("rb")
        try:
            index = self._scan_pack(fh)
            file_size = os.fstat(fh.fileno()).st_size
            dead = file_size - self._live_bytes(index)
            if dead < self.compact_min_dead_bytes or dead < (
                self.compact_dead_fraction * file_size
            ):
                self._pack_index = index
                return
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
            try:
                new_index: dict[str, tuple[int, int, int | None]] = {}
                with os.fdopen(fd, "wb") as out:
                    # Live records in offset order: stable and seek-free.
                    for key, (offset, size, crc) in sorted(
                        index.items(), key=lambda item: item[1][0]
                    ):
                        if self._key_is_reclaimable(key):
                            continue  # version-stranded: reclaim
                        fh.seek(offset)
                        payload = fh.read(size)
                        # Pre-checksum records gain a CRC on the way
                        # through (the rewrite reads the bytes anyway).
                        crc = zlib.crc32(payload) if crc is None else crc
                        out.write(f"{key} {size} {crc}\n".encode("ascii"))
                        new_index[key] = (out.tell(), size, crc)
                        out.write(payload)
                    out.flush()
                    os.fsync(out.fileno())
                os.replace(tmp, self.manifest_path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.compactions += 1
            # Offsets moved: drop the read handle, adopt the new index.
            self._drop_read_state()
            self._pack_index = new_index
        finally:
            self._unlock(fh)
            fh.close()


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------


@dataclass
class BatchRunner:
    """Fan scenario specs out over a persistent pool, caching results.

    Parameters
    ----------
    jobs:
        Worker processes; 1 runs everything in-process (serial).  The
        pool is created lazily on the first parallel batch and reused by
        every later :meth:`run` call until :meth:`close`.
    cache_dir:
        Directory for the on-disk tier (a :class:`DiskCache`: per-key
        pickles plus the append-only manifest pack); ``None`` keeps
        results only in the in-process LRU.  Corrupt, unreadable or
        legacy-format entries are treated as misses, and a corrupt
        per-key file is deleted on detection so it is never re-parsed on
        the next warm start.
    memory_entries:
        Capacity of the in-process LRU tier; 0 disables it (every lookup
        then goes to disk, and duplicate specs across ``run()`` calls
        recompute when there is no ``cache_dir``).
    memory_observations:
        Size-aware cap on the LRU: total interval observations across
        cached outcomes (oldest entries evict beyond it); 0 removes the
        size bound and leaves only the entry count.
    retry_policy:
        Bounds on the fault-tolerance layer (crash retries, watchdog
        deadlines, serial degradation); ``None`` takes the defaults
        with ``REPRO_*`` environment overrides
        (:meth:`~repro.sim.supervise.RetryPolicy.from_env`).
    journal:
        Optional :class:`~repro.sim.supervise.RunJournal`; every
        completed fingerprint (cache hit or fresh run) is appended, so
        an interrupted invocation can report progress and ``--resume``.
    """

    jobs: int = 1
    cache_dir: str | Path | None = None
    memory_entries: int = DEFAULT_MEMORY_ENTRIES
    memory_observations: int = DEFAULT_MEMORY_OBSERVATIONS
    retry_policy: RetryPolicy | None = None
    journal: RunJournal | None = None
    cache_hits: int = field(default=0, init=False)
    cache_misses: int = field(default=0, init=False)
    memory_hits: int = field(default=0, init=False)
    disk_hits: int = field(default=0, init=False)
    specs_dispatched: int = field(default=0, init=False)
    chunks_dispatched: int = field(default=0, init=False)
    pool_spawns: int = field(default=0, init=False)
    # -- fault-tolerance counters (the [fault] stderr line) ------------
    worker_crashes: int = field(default=0, init=False)
    spec_timeouts: int = field(default=0, init=False)
    chunk_retries: int = field(default=0, init=False)
    chunk_bisections: int = field(default=0, init=False)
    pool_rebuilds: int = field(default=0, init=False)
    specs_failed: int = field(default=0, init=False)
    degraded: bool = field(default=False, init=False)
    stop_requested: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.memory_entries < 0:
            raise ValueError("memory_entries must be >= 0")
        if self.memory_observations < 0:
            raise ValueError("memory_observations must be >= 0")
        if self.retry_policy is None:
            self.retry_policy = RetryPolicy.from_env()
        self._disk: DiskCache | None = None
        if self.cache_dir is not None:
            from repro.scenarios.spec import cache_key_prefix

            self.cache_dir = Path(self.cache_dir)
            self._disk = DiskCache(
                self.cache_dir, live_prefix=cache_key_prefix()
            )
        self._pool: ProcessPoolExecutor | None = None
        self._memory: OrderedDict[str, "ScenarioOutcome"] = OrderedDict()
        self._memory_weights: dict[str, int] = {}
        self._memory_weight = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def pool_workers(self) -> int:
        """Workers in the live pool (0 while no pool exists)."""
        return 0 if self._pool is None else self.jobs

    @property
    def disk(self) -> DiskCache | None:
        """The on-disk tier (``None`` without a ``cache_dir``)."""
        return self._disk

    def close(self) -> None:
        """Shut the worker pool down and close the disk tier, giving it
        its compaction opportunity (idempotent; the caches survive)."""
        self._retire_pool()
        if self._disk is not None:
            self._disk.close()

    def request_stop(self) -> None:
        """Ask the current/next run to stop after draining in flight.

        Signal-handler safe (sets a flag); the supervisor notices within
        one poll interval, lets in-flight chunks finish, flushes their
        outcomes to cache and journal, then raises
        :class:`~repro.errors.RunInterruptedError`.
        """
        self.stop_requested = True

    def _retire_pool(self, *, kill: bool = False) -> None:
        """Tear the pool down; ``kill`` SIGKILLs workers first (the only
        way out when one is hung -- ``shutdown`` would join it forever).
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.kill()
                except (OSError, AttributeError):  # already gone
                    pass
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # broken pools can raise on shutdown too
            pass

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_warm_worker
            )
            self.pool_spawns += 1
        return self._pool

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, specs: Iterable["ScenarioSpec"]) -> list["ScenarioOutcome"]:
        """Execute every spec, in input order; duplicates run once."""
        spec_list = list(specs)
        results: list["ScenarioOutcome | None"] = [None] * len(spec_list)
        for index, outcome in self.iter_run(spec_list):
            results[index] = outcome
        return results  # type: ignore[return-value]  # every index yielded

    def iter_run(
        self,
        specs: Iterable["ScenarioSpec"],
        *,
        on_failure: str = "raise",
    ) -> Iterator[tuple[int, "ScenarioOutcome"]]:
        """Yield ``(input_index, outcome)`` pairs in completion order.

        Every input index is yielded exactly once: cache hits
        immediately, computed specs as their chunk completes, duplicate
        indices right after their key resolves.  Unlike :meth:`run` this
        never materializes the whole outcome list, so a streaming
        consumer (the fleet aggregation fold) can reduce each outcome
        and drop it -- only the in-process LRU (bounded by
        ``memory_observations``) retains references.

        A spec that definitively fails (poison spec, repeated watchdog
        timeout, Python exception in the engine) does not abort its
        batch-mates.  With ``on_failure="raise"`` (the default) the
        first failure's :class:`~repro.errors.ExecutionError` is raised
        *after* every other spec has been yielded; with
        ``on_failure="yield"`` the error object itself is yielded in
        the outcome slot, so pack runners can report per-entry status.
        """
        from repro.scenarios.spec import ScenarioSpec

        if on_failure not in ("raise", "yield"):
            raise ValueError('on_failure must be "raise" or "yield"')
        spec_list = list(specs)
        for spec in spec_list:
            if not isinstance(spec, ScenarioSpec):
                raise TypeError(f"expected ScenarioSpec, got {type(spec).__name__}")
        keys = [spec.fingerprint() for spec in spec_list]

        positions: dict[str, list[int]] = {}
        for index, key in enumerate(keys):
            positions.setdefault(key, []).append(index)

        pending: list[tuple[str, "ScenarioSpec"]] = []
        seen: set[str] = set()
        for key, spec in zip(keys, spec_list):
            if key in seen:
                continue  # duplicate: probe the cache once per key
            seen.add(key)
            cached = self._cache_load(key)
            if cached is not None:
                self.cache_hits += 1
                if self.journal is not None:
                    self.journal.record(key)
                for index in positions[key]:
                    yield index, cached
            else:
                pending.append((key, spec))
                self.cache_misses += 1

        deferred: ExecutionError | None = None
        for key, result in self._execute(pending):
            if isinstance(result, ExecutionError):
                if on_failure == "yield":
                    for index in positions[key]:
                        yield index, result  # type: ignore[misc]
                elif deferred is None:
                    deferred = result
                continue
            if self.journal is not None:
                self.journal.record(key)
            for index in positions[key]:
                yield index, result
        if deferred is not None:
            raise deferred

    def results(self, specs: Iterable["ScenarioSpec"]):
        """Like :meth:`run` but unwrapped to bare ``ExperimentResult``s."""
        return [outcome.result for outcome in self.run(specs)]

    def run_one(self, spec: "ScenarioSpec") -> "ScenarioOutcome":
        """Convenience wrapper for a single spec."""
        return self.run([spec])[0]

    def _execute(
        self, pending: Sequence[tuple[str, "ScenarioSpec"]]
    ) -> Iterable[tuple[str, "ScenarioOutcome | ExecutionError"]]:
        """Compute pending specs (completion order) and cache each one.

        Yields the spec's :class:`~repro.errors.ExecutionError` in place
        of its outcome when it definitively failed (never cached).
        """
        if not pending:
            return
        self.specs_dispatched += len(pending)
        # A single spec is cheaper in-process unless warm workers are
        # already standing by.
        if self.jobs > 1 and (self._pool is not None or len(pending) > 1):
            yield from self._execute_pool(pending)
            return
        for position, (key, spec) in enumerate(pending):
            if self.stop_requested:
                raise RunInterruptedError(
                    f"run interrupted: {len(pending) - position} spec(s) "
                    "still pending; completed work is cached and "
                    "journaled -- rerun with --resume to continue",
                    remaining=len(pending) - position,
                )
            try:
                outcome = execute_scenario(spec)
            except Exception as exc:
                self.specs_failed += 1
                yield (
                    key,
                    SpecFailedError(
                        f"spec {spec.describe()} ({key}) raised "
                        f"{type(exc).__name__}: {exc}",
                        fingerprint=key,
                        spec_description=spec.describe(),
                        exception_type=type(exc).__name__,
                    ),
                )
                continue
            self._cache_store_many([(key, outcome)])
            yield key, outcome

    def _execute_pool(
        self, pending: Sequence[tuple[str, "ScenarioSpec"]]
    ) -> Iterable[tuple[str, "ScenarioOutcome | ExecutionError"]]:
        chunks = plan_chunks(pending, self.jobs)
        self.chunks_dispatched += len(chunks)
        assert self.retry_policy is not None  # __post_init__ resolves it
        supervisor = PoolSupervisor(self, chunks, self.retry_policy)
        for key, result in supervisor.events():
            if not isinstance(result, ExecutionError):
                self._cache_store_many([(key, result)])
            yield key, result

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------

    def _memory_get(self, key: str) -> "ScenarioOutcome | None":
        if self.memory_entries == 0:
            return None
        outcome = self._memory.get(key)
        if outcome is not None:
            self._memory.move_to_end(key)
        return outcome

    def _memory_put(self, key: str, outcome: "ScenarioOutcome") -> None:
        if self.memory_entries == 0:
            return
        weight = max(1, len(outcome.result))
        if key in self._memory:
            self._memory_weight -= self._memory_weights[key]
        self._memory[key] = outcome
        self._memory_weights[key] = weight
        self._memory_weight += weight
        self._memory.move_to_end(key)
        while len(self._memory) > 1 and (
            len(self._memory) > self.memory_entries
            or (
                self.memory_observations
                and self._memory_weight > self.memory_observations
            )
        ):
            evicted, _ = self._memory.popitem(last=False)
            self._memory_weight -= self._memory_weights.pop(evicted)

    def _cache_load(self, key: str) -> "ScenarioOutcome | None":
        outcome = self._memory_get(key)
        if outcome is not None:
            self.memory_hits += 1
            return outcome
        if self._disk is None:
            return None
        outcome = self._disk.load(key)
        if outcome is not None:
            self.disk_hits += 1
            self._memory_put(key, outcome)
        return outcome

    def _cache_store_many(
        self, items: Sequence[tuple[str, "ScenarioOutcome"]]
    ) -> None:
        for key, outcome in items:
            self._memory_put(key, outcome)
        if self._disk is None or not items:
            return
        self._disk.store_many(
            [
                (key, pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL))
                for key, outcome in items
            ]
        )


def get_runner(runner: BatchRunner | None) -> BatchRunner:
    """The given runner, or a fresh serial one (LRU tier only)."""
    return runner if runner is not None else BatchRunner()
