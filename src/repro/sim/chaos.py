"""Execution-chaos harness: deterministic fault injection for the runner.

This is fault injection for the *execution substrate itself* -- the
counterpart to the simulated fleet faults in :mod:`repro.fleet.faults`.
Where those model nodes dying inside the simulation, this module makes
the batch runner's own worker processes crash, hang, or find their
cache corrupted, so the supervision layer (:mod:`repro.sim.supervise`)
can be exercised end to end: a chaos run must complete, retry a bounded
number of times, and produce output **byte-identical** to a fault-free
run -- every spec is a pure function of itself, so a retried spec
cannot change the result.

Determinism discipline
----------------------
Faults are selected *per spec fingerprint* from a seed (a salted SHA-256
of ``seed:fingerprint``), never from wall-clock or process identity, so
the same chaos config always targets the same specs no matter how work
is chunked or which worker picks a chunk up.  Rate/fingerprint faults
fire **once** per spec per run: the injector claims a marker file in
``state_dir`` (``os.O_EXCL``, atomic across processes) before injecting,
so a retried spec succeeds and the run converges.  ``poison`` faults
deliberately skip the marker -- they crash on every dispatch, which is
what drives the supervisor's bisection-and-isolate path.

The config travels to pool workers through the :data:`ENV_VAR`
environment variable (inherited at fork/spawn), so no plumbing through
the runner is needed; injection happens only inside
:func:`~repro.sim.supervise.run_chunk` work items, never in the parent
or the serial path.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Iterator

#: Environment variable carrying the encoded chaos config into workers.
ENV_VAR = "REPRO_CHAOS"

#: Exit status of an injected hard crash (distinctive in pool logs).
CRASH_EXIT_STATUS = 37


@dataclass(frozen=True)
class ChaosConfig:
    """Declarative fault plan, hashable and environment-encodable.

    ``*_rate`` faults hit roughly 1-in-N specs (0 disables); the
    ``*_fingerprints`` tuples name exact victims for targeted tests.
    All except ``poison_fingerprints`` fire once per spec (marker files
    under ``state_dir``); poison specs crash on **every** dispatch.
    """

    seed: int = 0
    state_dir: str = ""
    crash_rate: int = 0  #: 1-in-N specs call os._exit mid-chunk (once)
    hang_rate: int = 0  #: 1-in-N specs sleep ``hang_s`` (once)
    hang_s: float = 3600.0
    crash_fingerprints: tuple[str, ...] = ()  #: os._exit victims (once)
    kill_fingerprints: tuple[str, ...] = ()  #: SIGKILL victims (once)
    hang_fingerprints: tuple[str, ...] = ()  #: sleep victims (once)
    poison_fingerprints: tuple[str, ...] = ()  #: crash every dispatch

    def __post_init__(self) -> None:
        for attr in (
            "crash_fingerprints",
            "kill_fingerprints",
            "hang_fingerprints",
            "poison_fingerprints",
        ):
            object.__setattr__(self, attr, tuple(getattr(self, attr)))
        if (self.crash_rate or self.hang_rate) and not self.state_dir:
            raise ValueError("rate-based chaos needs a state_dir for markers")

    # -- wire format ----------------------------------------------------

    def encode(self) -> str:
        """The JSON wire form carried by :data:`ENV_VAR`."""
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        for name, value in payload.items():
            if isinstance(value, tuple):
                payload[name] = list(value)
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def decode(cls, text: str) -> "ChaosConfig":
        return cls(**json.loads(text))

    # -- fault selection ------------------------------------------------

    def fault_for(self, fingerprint: str) -> str | None:
        """The fault mode this config assigns to one spec, if any.

        Pure function of ``(seed, fingerprint)``: targeted lists win
        over rates, and crash wins over hang so a spec never needs two
        markers.  Returns ``"poison"``, ``"crash"``, ``"kill"``,
        ``"hang"`` or ``None``.
        """
        if fingerprint in self.poison_fingerprints:
            return "poison"
        if fingerprint in self.crash_fingerprints:
            return "crash"
        if fingerprint in self.kill_fingerprints:
            return "kill"
        if fingerprint in self.hang_fingerprints:
            return "hang"
        if self.crash_rate and self._roll("crash", fingerprint, self.crash_rate):
            return "crash"
        if self.hang_rate and self._roll("hang", fingerprint, self.hang_rate):
            return "hang"
        return None

    def _roll(self, salt: str, fingerprint: str, rate: int) -> bool:
        digest = hashlib.sha256(
            f"{salt}:{self.seed}:{fingerprint}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") % rate == 0


# ----------------------------------------------------------------------
# activation (parent side)
# ----------------------------------------------------------------------


@contextmanager
def active_config(config: ChaosConfig) -> Iterator[ChaosConfig]:
    """Activate chaos for the duration of a ``with`` block.

    Sets :data:`ENV_VAR` so worker processes forked/spawned inside the
    block inherit the plan; restores the previous value on exit.
    """
    if config.state_dir:
        Path(config.state_dir).mkdir(parents=True, exist_ok=True)
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = config.encode()
    try:
        yield config
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous


def active() -> ChaosConfig | None:
    """The chaos config in effect for this process, if any."""
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    try:
        return ChaosConfig.decode(text)
    except (ValueError, TypeError):  # malformed env: chaos off
        return None


def fired_markers(state_dir: str | Path) -> list[str]:
    """The marker files of faults that have fired (test/assert helper)."""
    try:
        return sorted(p.name for p in Path(state_dir).iterdir())
    except OSError:
        return []


# ----------------------------------------------------------------------
# injection (worker side)
# ----------------------------------------------------------------------


def maybe_inject(fingerprint: str) -> None:
    """Inject this spec's fault, if chaos is active and it has one left.

    Called by :func:`repro.sim.supervise.run_chunk` immediately before
    each spec executes -- i.e. only ever inside a pool worker, so an
    injected ``os._exit``/SIGKILL takes down a *worker*, exactly the
    failure the supervisor exists to absorb.
    """
    config = active()
    if config is None:
        return
    mode = config.fault_for(fingerprint)
    if mode is None:
        return
    if mode == "poison":
        os._exit(CRASH_EXIT_STATUS)
    if not _claim(config.state_dir, mode, fingerprint):
        return  # this fault already fired once; let the retry succeed
    if mode == "crash":
        os._exit(CRASH_EXIT_STATUS)
    elif mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "hang":
        time.sleep(config.hang_s)


def _claim(state_dir: str, mode: str, fingerprint: str) -> bool:
    """Atomically claim a once-only fault (first claimant injects)."""
    if not state_dir:
        return True  # targeted fault without state: always fires
    path = Path(state_dir) / f"{mode}-{fingerprint}"
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return True  # marker dir unusable: prefer injecting to silence
    os.close(fd)
    return True


# ----------------------------------------------------------------------
# cache corruption (driver side)
# ----------------------------------------------------------------------


@dataclass
class CorruptionReport:
    """What :func:`corrupt_cache` did, for logs and assertions."""

    actions: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.actions)


def corrupt_cache(cache_dir: str | Path, seed: int) -> CorruptionReport:
    """Deterministically damage an on-disk cache directory.

    Three corruption shapes, mirroring what real crashes and bad disks
    leave behind: the manifest pack loses a tail chunk (crashed
    appender), one mid-pack record gets scribbled bytes (bit rot -- the
    unpickle fails and the record is quarantined), and up to two
    per-key pickles are truncated or overwritten.  Selection is driven
    by ``random.Random(seed)`` only, so a chaos matrix can replay the
    exact same damage.
    """
    rng = random.Random(seed)
    cache_dir = Path(cache_dir)
    report = CorruptionReport()
    manifest = cache_dir / "manifest.pack"
    try:
        size = manifest.stat().st_size
    except OSError:
        size = 0
    if size > 256:
        # Scribble into the body first (a surviving, quarantinable
        # record), then truncate the tail (a lost suffix).
        offset = rng.randrange(size // 4, size // 2)
        with manifest.open("r+b") as fh:
            fh.seek(offset)
            fh.write(b"\xde\xad\xbe\xef")
            report.actions.append(f"scribbled 4 bytes at {offset} in {manifest.name}")
            cut = rng.randrange(1, min(128, size // 4))
            fh.truncate(size - cut)
            report.actions.append(f"truncated {cut} tail byte(s) of {manifest.name}")
    pickles = sorted(cache_dir.glob("*.pkl"))
    for path in rng.sample(pickles, k=min(2, len(pickles))):
        data = path.read_bytes()
        if len(data) < 16:
            continue
        if rng.random() < 0.5:
            path.write_bytes(data[: len(data) // 2])
            report.actions.append(f"truncated {path.name}")
        else:
            corrupted = bytearray(data)
            at = rng.randrange(4, len(data) - 4)
            corrupted[at : at + 4] = b"\xde\xad\xbe\xef"
            path.write_bytes(bytes(corrupted))
            report.actions.append(f"scribbled {path.name}")
    return report


__all__ = [
    "CRASH_EXIT_STATUS",
    "ChaosConfig",
    "CorruptionReport",
    "ENV_VAR",
    "active",
    "active_config",
    "corrupt_cache",
    "fired_markers",
    "maybe_inject",
]
