"""Latency statistics over monitoring intervals.

The paper quantifies QoS with the tail latency of the request distribution
-- the 95th percentile for Memcached, the 90th for Web-Search (Table 1) --
sampled once per monitoring interval, plus two summary metrics
(Section 4.2.4): *QoS guarantee*, the percentage of intervals whose
measured tail did not violate the target, and *QoS tardiness*,
``QoS_curr / QoS_target`` averaged over violating intervals only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LatencySample:
    """Tail-latency measurement for one monitoring interval."""

    tail_latency_ms: float
    mean_latency_ms: float
    n_requests: int

    def tardiness(self, target_ms: float) -> float:
        """``QoS_curr / QoS_target`` for this sample (Section 3.4 footnote)."""
        if target_ms <= 0:
            raise ValueError("target must be positive")
        return self.tail_latency_ms / target_ms

    def violates(self, target_ms: float) -> bool:
        """Whether this sample's tail exceeds the target."""
        return self.tail_latency_ms > target_ms


def linear_quantile(
    values: np.ndarray, q: float, *, destructive: bool = False
) -> float:
    """``np.quantile(values, q)`` for 1-D float64 data, via a partial sort.

    ``np.quantile`` fully dispatches through ``_ureduce`` and friends,
    which costs more than the selection itself on interval-sized samples.
    This replica partitions the array at the two bracketing order
    statistics and then applies numpy's own ``method="linear"``
    interpolation formula (including its ``gamma >= 0.5`` rewrite, which
    exists for floating-point symmetry) so the result is bit-identical to
    ``np.quantile`` -- an equivalence pinned by a randomized test.

    ``destructive=True`` partitions ``values`` in place (the quantile is
    permutation-invariant, but anything order-sensitive -- a pairwise
    mean, the pairing with per-request arrival times -- must happen
    before, so only pass it for buffers the caller owns and is done with).
    """
    n = values.size
    virtual = q * (n - 1)
    lower = int(virtual)
    gamma = virtual - lower
    part = values if destructive else values.copy()
    if gamma == 0.0:
        part.partition(lower)
        return float(part[lower])
    part.partition((lower, lower + 1))
    a = part[lower]
    b = part[lower + 1]
    diff = b - a
    if gamma >= 0.5:
        return float(b - diff * (1.0 - gamma))
    return float(a + diff * gamma)


def summarize_latencies(
    latencies_ms: np.ndarray, percentile: float, *, idle_latency_ms: float = 0.0
) -> LatencySample:
    """Summarize an interval's request latencies.

    ``percentile`` is a fraction in (0, 1), e.g. 0.95 for p95.  Intervals
    with no completed requests (near-zero load) report the floor latency
    ``idle_latency_ms`` -- an unloaded service still answers in its base
    service time.
    """
    if not 0.0 < percentile < 1.0:
        raise ValueError("percentile must be a fraction in (0, 1)")
    latencies_ms = np.asarray(latencies_ms, dtype=float)
    if latencies_ms.size == 0:
        return LatencySample(
            tail_latency_ms=idle_latency_ms,
            mean_latency_ms=idle_latency_ms,
            n_requests=0,
        )
    return LatencySample(
        tail_latency_ms=linear_quantile(latencies_ms, percentile),
        # np.mean through the raw reduction: the same pairwise sum and
        # divide, minus the ~2us of axis/dtype dispatch per call.
        mean_latency_ms=float(np.add.reduce(latencies_ms) / latencies_ms.size),
        n_requests=int(latencies_ms.size),
    )


def qos_guarantee(tails_ms: np.ndarray, target_ms: float) -> float:
    """Fraction of intervals whose tail met the target (Section 4.2.4)."""
    tails_ms = np.asarray(tails_ms, dtype=float)
    if tails_ms.size == 0:
        return 1.0
    return float(np.mean(tails_ms <= target_ms))


def qos_tardiness(tails_ms: np.ndarray, target_ms: float) -> float:
    """Mean ``QoS_curr/QoS_target`` over violating intervals only.

    Returns 0.0 when no interval violates (the paper's table reports
    tardiness conditioned on violation).
    """
    tails_ms = np.asarray(tails_ms, dtype=float)
    violating = tails_ms[tails_ms > target_ms]
    if violating.size == 0:
        return 0.0
    return float(np.mean(violating / target_ms))
