"""Simulation substrate: queueing, contention, records, engine, batching."""

from repro.sim.batch import BatchRunner, DiskCache
from repro.sim.contention import ClusterPressure, ContentionModel, aggregate_pressure
from repro.sim.engine import (
    DEFAULT_MAX_BACKLOG_S,
    DEFAULT_MIGRATION_PENALTY_S,
    EngineConfig,
    IntervalSimulator,
    run_experiment,
)
from repro.sim.latency import (
    LatencySample,
    qos_guarantee,
    qos_tardiness,
    summarize_latencies,
)
from repro.sim.queueing import DispatchQueue, IntervalQueueStats
from repro.sim.records import (
    STORAGE_VERSION,
    ExperimentResult,
    IntervalObservation,
    ObservationRowView,
    ObservationTable,
)

__all__ = [
    "BatchRunner",
    "ClusterPressure",
    "ContentionModel",
    "DEFAULT_MAX_BACKLOG_S",
    "DEFAULT_MIGRATION_PENALTY_S",
    "DiskCache",
    "DispatchQueue",
    "EngineConfig",
    "ExperimentResult",
    "IntervalObservation",
    "ObservationRowView",
    "ObservationTable",
    "STORAGE_VERSION",
    "IntervalQueueStats",
    "IntervalSimulator",
    "LatencySample",
    "aggregate_pressure",
    "qos_guarantee",
    "qos_tardiness",
    "run_experiment",
    "summarize_latencies",
]
