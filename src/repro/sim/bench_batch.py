"""Batch-layer benchmark: persistent-pool runner vs per-call-pool baseline.

This module is the single source of truth for the *batch execution*
performance trajectory, the layer above the interval engine that
:mod:`repro.sim.bench` measures.  It drives the same spec batches
through the current :class:`~repro.sim.batch.BatchRunner` (persistent
worker pool, cost-aware LJF scheduling, two-tier outcome cache) and
through :class:`PerCallPoolRunner`, a preserved reimplementation of the
pre-overhaul runner (a fresh ``ProcessPoolExecutor`` per ``run()``
call, order-preserving ``pool.map`` with chunksize 1, per-key pickle
files only), and reports batch throughput for both plus their ratio.

Per-spec-seed determinism means both runners produce byte-identical
outcomes -- every measurement doubles as an equivalence check.

Measurement protocol
--------------------
Runs are *paired* (one baseline run immediately followed by one
persistent-pool run, fresh cache state per side as the point demands)
and the headline speedup is the **median of per-pair wall-clock
ratios**, the same drift-immune protocol as the engine benchmark.  Both
sides run at ``--jobs 4``.

Benchmark points
----------------
* ``all-quick-grid/cold`` -- the 14-experiment ``all --quick`` figure
  grid (524 spec requests, ~340 unique) against an empty cache: the
  per-call baseline spawns 14 pools and re-reads cross-experiment
  duplicates from disk; the persistent runner spawns one pool and
  serves duplicates from the in-process LRU.
* ``fleet-64/cold`` -- one 64-node fleet-diurnal day, empty cache:
  dominated by simulation compute; cost-aware chunking must at least
  not regress it.
* ``fleet-64/warm-memory`` -- the same fleet re-dispatched repeatedly
  through one live runner (a sweep iterating on an overlapping grid):
  the baseline re-reads all 64 outcomes from disk on every dispatch,
  the persistent runner answers from the LRU tier.
* ``fleet-64/warm-start`` -- a fresh runner against a cache directory
  populated by its own side (re-running after a restart): per-key
  ``open``/``stat`` storm over dataclass-tuple payloads vs one
  sequential manifest-pack scan over columnar payloads.
* ``fleet-64/warm-decode`` -- the warm-start read path in isolation:
  decoding every node's cache payload, pre-columnar format (a pickled
  tuple of per-interval ``IntervalObservation`` dataclasses, migrated
  into the current columnar result on load) vs the struct-of-arrays
  :class:`~repro.sim.records.ObservationTable` payload.

The baseline preserves the pre-overhaul system end to end, *including
its storage format*: :func:`encode_legacy_outcome` /
:func:`decode_legacy_outcome` reproduce the dataclass-tuple payloads
the pre-columnar cache pickled, which is what made warm starts
unpickle-bound in the first place (see ROADMAP).  In-memory results are
the current columnar type on both sides -- only the runner, dispatch
strategy and at-rest format differ.

Used by ``benchmarks/test_bench_batch.py`` (assertions + CI guard) and
``hipster-repro bench-batch`` (writes ``BENCH_batch.json``).
"""

from __future__ import annotations

import json
import os
import pickle
import platform as platform_module
import statistics
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.sim.batch import BatchRunner, execute_scenario
from repro.sim.queueing import KERNEL_VERSION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.spec import FleetSpec
    from repro.scenarios.spec import ScenarioOutcome, ScenarioSpec

#: Worker processes for every benchmark point (the ISSUE's target knob).
BENCH_JOBS = 4

#: Fleet size of the fleet points.
FLEET_NODES = 64

#: Re-dispatches per warm-memory measurement (amortizes timer noise).
WARM_REDISPATCHES = 10

#: Default pairs per point (the committed trajectory uses this).
DEFAULT_PAIRS = 3

#: Where the committed trajectory lives, relative to the repo root.
BENCH_REPORT_NAME = "BENCH_batch.json"

#: Experiment-registry keys whose ``run()`` takes a workload argument.
_WORKLOAD_EXPERIMENTS = frozenset({"fig2", "fig5", "fleet-scale"})

#: Payload-decode sweeps per warm-decode measurement (timer resolution).
DECODE_SWEEPS = 3


# ----------------------------------------------------------------------
# the preserved pre-overhaul system (benchmark baseline)
# ----------------------------------------------------------------------


def encode_legacy_outcome(outcome: "ScenarioOutcome") -> bytes:
    """Pickle an outcome the way the pre-columnar cache did.

    The payload carries a tuple of per-interval
    :class:`~repro.sim.records.IntervalObservation` dataclasses plus the
    result metadata and manager stats -- thousands of small objects per
    run, which is exactly what made warm-start reads unpickle-bound.
    """
    result = outcome.result
    return pickle.dumps(
        {
            "spec": outcome.spec,
            "manager_stats": outcome.manager_stats,
            "workload_name": result.workload_name,
            "manager_name": result.manager_name,
            "target_latency_ms": result.target_latency_ms,
            "interval_s": result.interval_s,
            "observations": result.observations,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def decode_legacy_outcome(payload: bytes) -> "ScenarioOutcome":
    """Decode a pre-columnar payload into a usable outcome.

    Unpickles the per-interval dataclasses (the pre-overhaul decode
    cost) and migrates them into the current columnar result type (the
    additional cost any legacy cache entry would pay to be served
    today).
    """
    from repro.scenarios.spec import ScenarioOutcome
    from repro.sim.records import ExperimentResult

    state = pickle.loads(payload)
    result = ExperimentResult(
        state["observations"],
        workload_name=state["workload_name"],
        manager_name=state["manager_name"],
        target_latency_ms=state["target_latency_ms"],
        interval_s=state["interval_s"],
    )
    return ScenarioOutcome(
        spec=state["spec"],
        result=result,
        manager_stats=state["manager_stats"],
    )


class PerCallPoolRunner:
    """The batch runner as it was before the sweep-scale overhaul.

    Preserved verbatim in behaviour (the way
    :mod:`repro.sim.engine_reference` preserves the pre-optimization
    engine): a fresh ``ProcessPoolExecutor`` per ``run()`` call,
    order-preserving ``pool.map`` with chunksize 1, and an on-disk cache
    of one pickle file per fingerprint with no in-memory tier, no
    manifest and the pre-columnar dataclass-tuple payload format
    (:func:`encode_legacy_outcome`).  Only used as the benchmark
    baseline.
    """

    def __init__(self, jobs: int = 1, cache_dir: str | Path | None = None):
        self.jobs = jobs
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self.cache_hits = 0
        self.cache_misses = 0

    def run(self, specs: Iterable["ScenarioSpec"]) -> list["ScenarioOutcome"]:
        spec_list = list(specs)
        keys = [spec.fingerprint() for spec in spec_list]
        outcomes: dict[str, ScenarioOutcome] = {}
        pending: list[tuple[str, ScenarioSpec]] = []
        pending_keys: set[str] = set()
        for key, spec in zip(keys, spec_list):
            if key in outcomes or key in pending_keys:
                continue
            cached = self._cache_load(key)
            if cached is not None:
                outcomes[key] = cached
                self.cache_hits += 1
            else:
                pending.append((key, spec))
                pending_keys.add(key)
                self.cache_misses += 1
        for key, outcome in zip(
            (key for key, _ in pending),
            self._execute([spec for _, spec in pending]),
        ):
            outcomes[key] = outcome
            self._cache_store(key, outcome)
        return [outcomes[key] for key in keys]

    def iter_run(self, specs: Iterable["ScenarioSpec"]):
        """Streaming-protocol shim: the pre-overhaul runner always
        materialized the whole batch, so it yields from the full list
        (faithfully keeping its all-outcomes-resident behaviour)."""
        yield from enumerate(self.run(specs))

    def results(self, specs: Iterable["ScenarioSpec"]):
        return [outcome.result for outcome in self.run(specs)]

    def run_one(self, spec: "ScenarioSpec") -> "ScenarioOutcome":
        return self.run([spec])[0]

    def close(self) -> None:  # symmetry with BatchRunner
        pass

    def _execute(self, specs) -> list["ScenarioOutcome"]:
        if self.jobs > 1 and len(specs) > 1:
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(specs))) as pool:
                return list(pool.map(execute_scenario, specs))
        return [execute_scenario(spec) for spec in specs]

    def _cache_load(self, key: str) -> "ScenarioOutcome | None":
        if self.cache_dir is None:
            return None
        try:
            payload = (self.cache_dir / f"{key}.pkl").read_bytes()
            return decode_legacy_outcome(payload)
        except FileNotFoundError:
            return None
        except Exception:
            return None

    def _cache_store(self, key: str, outcome: "ScenarioOutcome") -> None:
        if self.cache_dir is None:
            return
        path = self.cache_dir / f"{key}.pkl"
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(encode_legacy_outcome(outcome))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


#: Runner factories, keyed by the side name used in the report.
RUNNERS: dict[str, Callable[..., object]] = {
    "percall": PerCallPoolRunner,
    "persistent": BatchRunner,
}


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------


def run_quick_grid(runner) -> int:
    """The ``all --quick`` figure grid through one runner; returns the
    number of rendered characters (a cheap integrity proxy)."""
    from repro.experiments import EXPERIMENTS

    rendered = 0
    for name in sorted(EXPERIMENTS):
        module = EXPERIMENTS[name]
        if name in _WORKLOAD_EXPERIMENTS:
            result = module.run("memcached", quick=True, runner=runner)
        else:
            result = module.run(quick=True, runner=runner)
        rendered += len(result.render())
    return rendered


def bench_fleet_spec(n_nodes: int = FLEET_NODES) -> "FleetSpec":
    """The fleet point's spec: a quick memcached fleet-diurnal day."""
    from repro.scenarios import DEFAULT_REGISTRY

    return DEFAULT_REGISTRY.build(
        "fleet-diurnal",
        workload="memcached",
        n_nodes=n_nodes,
        balancer="round-robin",
        quick=True,
    )


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BenchPointResult:
    """Measured numbers for one benchmark point."""

    key: str
    baseline_wall_s: float
    optimized_wall_s: float
    speedup: float
    spec_requests: int

    def as_json(self) -> dict:
        return {
            "percall_wall_s": round(self.baseline_wall_s, 3),
            "persistent_wall_s": round(self.optimized_wall_s, 3),
            "speedup": round(self.speedup, 2),
            "spec_requests": self.spec_requests,
        }


def _paired(
    measure: Callable[[str], tuple[float, int]], key: str, pairs: int
) -> BenchPointResult:
    """Run ``measure(side)`` in baseline/persistent pairs; median ratio."""
    ratios = []
    best = {"percall": float("inf"), "persistent": float("inf")}
    requests = 0
    for _ in range(pairs):
        base, requests = measure("percall")
        opt, requests = measure("persistent")
        ratios.append(base / opt)
        best["percall"] = min(best["percall"], base)
        best["persistent"] = min(best["persistent"], opt)
    return BenchPointResult(
        key=key,
        baseline_wall_s=best["percall"],
        optimized_wall_s=best["persistent"],
        speedup=statistics.median(ratios),
        spec_requests=requests,
    )


def measure_grid_cold(pairs: int = DEFAULT_PAIRS) -> BenchPointResult:
    """``all-quick-grid/cold``: the full figure grid, empty cache."""

    def measure(side: str) -> tuple[float, int]:
        with tempfile.TemporaryDirectory() as cache_dir:
            runner = RUNNERS[side](jobs=BENCH_JOBS, cache_dir=cache_dir)
            try:
                t0 = time.perf_counter()
                run_quick_grid(runner)
                wall = time.perf_counter() - t0
            finally:
                runner.close()
            return wall, runner.cache_hits + runner.cache_misses

    return _paired(measure, "all-quick-grid/cold", pairs)


def measure_fleet_cold(
    pairs: int = DEFAULT_PAIRS, n_nodes: int = FLEET_NODES
) -> BenchPointResult:
    """``fleet-64/cold``: one fleet day, empty cache (compute-bound)."""
    specs = list(bench_fleet_spec(n_nodes).node_specs())

    def measure(side: str) -> tuple[float, int]:
        with tempfile.TemporaryDirectory() as cache_dir:
            runner = RUNNERS[side](jobs=BENCH_JOBS, cache_dir=cache_dir)
            try:
                t0 = time.perf_counter()
                runner.run(specs)
                wall = time.perf_counter() - t0
            finally:
                runner.close()
            return wall, len(specs)

    return _paired(measure, f"fleet-{n_nodes}/cold", pairs)


def measure_fleet_warm_memory(
    pairs: int = DEFAULT_PAIRS,
    n_nodes: int = FLEET_NODES,
    redispatches: int = WARM_REDISPATCHES,
) -> BenchPointResult:
    """``fleet-64/warm-memory``: re-dispatching a live runner's batch.

    This is the sweep inner loop -- overlapping grids dispatched against
    a runner that has already computed the shared specs.  The baseline
    pays the per-key disk storm every time; the persistent runner's LRU
    answers in-process.
    """
    specs = list(bench_fleet_spec(n_nodes).node_specs())

    def measure(side: str) -> tuple[float, int]:
        with tempfile.TemporaryDirectory() as cache_dir:
            runner = RUNNERS[side](jobs=BENCH_JOBS, cache_dir=cache_dir)
            try:
                runner.run(specs)  # warm (untimed): compute + populate
                t0 = time.perf_counter()
                for _ in range(redispatches):
                    runner.run(specs)
                wall = time.perf_counter() - t0
            finally:
                runner.close()
            return wall, redispatches * len(specs)

    return _paired(measure, f"fleet-{n_nodes}/warm-memory", pairs)


def measure_fleet_warm_start(
    pairs: int = DEFAULT_PAIRS, n_nodes: int = FLEET_NODES
) -> BenchPointResult:
    """``fleet-64/warm-start``: a fresh process re-reads a full cache.

    Models ``hipster-repro`` re-invoked with ``--cache-dir`` after a
    code-free change: every outcome is already on disk, so the whole
    run is the warm-start read path.  Each side warms the cache with its
    *own* runner so it reads its own storage format -- the baseline is
    the whole pre-overhaul system (per-key open storm + dataclass-tuple
    payload decode), the optimized side the current one (one manifest
    scan + columnar payload decode).
    """
    specs = list(bench_fleet_spec(n_nodes).node_specs())

    def measure(side: str) -> tuple[float, int]:
        with tempfile.TemporaryDirectory() as cache_dir:
            warmer = RUNNERS[side](jobs=BENCH_JOBS, cache_dir=cache_dir)
            try:
                warmer.run(specs)  # populate the side's tiers (untimed)
            finally:
                warmer.close()
            runner = RUNNERS[side](jobs=BENCH_JOBS, cache_dir=cache_dir)
            try:
                t0 = time.perf_counter()
                runner.run(specs)
                wall = time.perf_counter() - t0
            finally:
                runner.close()
            return wall, len(specs)

    return _paired(measure, f"fleet-{n_nodes}/warm-start", pairs)


def measure_fleet_warm_decode(
    pairs: int = DEFAULT_PAIRS, n_nodes: int = FLEET_NODES
) -> BenchPointResult:
    """``fleet-64/warm-decode``: cache payload decode in isolation.

    The warm-start read path minus the filesystem: every node outcome
    is encoded once in both at-rest formats, then each side is timed
    decoding all of them (:data:`DECODE_SWEEPS` sweeps per measurement
    for timer resolution).  The baseline decodes the pre-columnar
    dataclass-tuple payloads *and* migrates them into the current
    columnar result type -- what serving a legacy cache entry costs
    today -- while the optimized side unpickles struct-of-arrays
    tables.
    """
    specs = list(bench_fleet_spec(n_nodes).node_specs())
    with BatchRunner(jobs=BENCH_JOBS) as runner:
        outcomes = runner.run(specs)
    columnar = [
        pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
        for outcome in outcomes
    ]
    legacy = [encode_legacy_outcome(outcome) for outcome in outcomes]

    def measure(side: str) -> tuple[float, int]:
        payloads = legacy if side == "percall" else columnar
        decode = decode_legacy_outcome if side == "percall" else pickle.loads
        t0 = time.perf_counter()
        for _ in range(DECODE_SWEEPS):
            for payload in payloads:
                decode(payload)
        wall = time.perf_counter() - t0
        return wall, DECODE_SWEEPS * len(payloads)

    return _paired(measure, f"fleet-{n_nodes}/warm-decode", pairs)


def measure_all(pairs: int = DEFAULT_PAIRS) -> dict[str, BenchPointResult]:
    """Measure every benchmark point, keyed for the JSON report."""
    results = [
        measure_grid_cold(pairs),
        measure_fleet_cold(pairs),
        measure_fleet_warm_memory(pairs),
        measure_fleet_warm_start(pairs),
        measure_fleet_warm_decode(pairs),
    ]
    return {result.key: result for result in results}


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------


def build_report(results: dict[str, BenchPointResult]) -> dict:
    """The ``BENCH_batch.json`` payload for a set of measurements."""
    return {
        "schema": 2,
        "kernel_version": KERNEL_VERSION,
        "benchmark": (
            "batch-layer benchmark: spec batches dispatched through the "
            "persistent-pool BatchRunner (LJF scheduling, two-tier "
            "cache, columnar ObservationTable cache payloads) vs the "
            "preserved pre-overhaul baseline (repro.sim.bench_batch."
            "PerCallPoolRunner: per-call pools, per-key files, "
            "pre-columnar dataclass-tuple payloads), both at "
            f"jobs={BENCH_JOBS}"
        ),
        "protocol": (
            f"paired runs ({DEFAULT_PAIRS} pairs), speedup = median of "
            "per-pair wall-clock ratios, wall seconds = best over "
            f"pairs; warm-memory re-dispatches the batch "
            f"{WARM_REDISPATCHES}x through one live runner; warm-start "
            "warms each side with its own runner/format; warm-decode "
            f"times {DECODE_SWEEPS} decode sweeps over every payload"
        ),
        "environment": {
            "python": platform_module.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
        },
        "points": {key: results[key].as_json() for key in sorted(results)},
    }


def write_report(path: str | Path, *, pairs: int = DEFAULT_PAIRS) -> dict:
    """Measure everything and write the JSON report; returns the payload."""
    report = build_report(measure_all(pairs))
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def load_report(path: str | Path) -> dict | None:
    """The committed report, or ``None`` when absent/unreadable."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None


def render_report(report: dict) -> str:
    """Human-readable summary of a report payload."""
    env = report["environment"]
    lines = [
        f"Batch-layer benchmark ({report['kernel_version']}, "
        f"python {env['python']}, numpy {env['numpy']}, "
        f"{env.get('cpus', '?')} cpu(s)):"
    ]
    for key, point in sorted(report["points"].items()):
        lines.append(
            f"  {key}: {point['percall_wall_s']:.2f}s -> "
            f"{point['persistent_wall_s']:.2f}s for "
            f"{point['spec_requests']} spec request(s) "
            f"({point['speedup']:.2f}x)"
        )
    return "\n".join(lines)
