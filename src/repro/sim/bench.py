"""Engine micro-benchmark: optimized vs reference intervals/sec.

This module is the single source of truth for the engine performance
trajectory.  It drives the same scenario through the optimized engine
(:mod:`repro.sim.engine`) and the preserved pre-optimization one
(:mod:`repro.sim.engine_reference`) and reports intervals/sec for both,
plus their ratio.

Measurement protocol
--------------------
Runs are *paired* (one reference run immediately followed by one
optimized run) and the headline speedup is the **median of per-pair
ratios**: CPU frequency drift and noisy neighbours hit both sides of a
pair roughly equally, so the ratio is far more stable -- and far more
machine-independent -- than either absolute number.  Absolute
intervals/sec are reported too (best over pairs) but only the ratio is
guarded in CI.

The benchmark points are the production-scale operating points from the
ISSUE: Memcached at its paper calibration (time-dilated replica,
``sim_scale=25``) offered 1k and 10k real arrivals per monitoring
interval, with and without a collocated SPEC batch job -- the regime
where fleet sweeps spend their time and where the interval loop, not the
queue kernel, used to dominate.

Used by ``benchmarks/test_bench_engine.py`` (assertions + CI guard),
``hipster-repro bench`` and ``tools/bench_report.py`` (both write
``BENCH_engine.json`` at the repo root).
"""

from __future__ import annotations

import json
import platform as platform_module
import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.sim.queueing import KERNEL_VERSION

#: The benchmark grid: (real arrivals per interval, collocation).
BENCH_POINTS: tuple[tuple[int, bool], ...] = (
    (1_000, False),
    (1_000, True),
    (10_000, False),
    (10_000, True),
)

#: The epoch fast-path grid: (regime name, real arrivals per interval).
#: Decision-stable workloads where the scalar interval loop is compared
#: against the decision-epoch batched path of the *same* engine: the
#: diurnal-trough regime (tens to low hundreds of real arrivals per
#: interval, where per-interval Python overhead dominates) and the
#: steady mid-rate regime.  High-arrival points are deliberately absent:
#: there the engine's load gate keeps the scalar path (see
#: ``_EPOCH_MIN_INTERVALS`` in :mod:`repro.sim.engine`).
EPOCH_POINTS: tuple[tuple[str, int], ...] = (
    ("trough", 30),
    ("trough", 100),
    ("steady", 1_000),
)

#: Default measurement effort (per benchmark point).
DEFAULT_INTERVALS = 300
DEFAULT_PAIRS = 5

#: Epoch points use longer runs: the epoch path's fixed per-run costs
#: amortize over whole decision-stable runs, which is exactly the
#: sweep-scale regime it accelerates.
EPOCH_INTERVALS = 2_000

#: Where the committed trajectory lives, relative to the repo root.
BENCH_REPORT_NAME = "BENCH_engine.json"


def point_key(arrivals: int, collocate: bool) -> str:
    """Stable JSON key for one benchmark point."""
    return f"arrivals={arrivals}/collocation={'on' if collocate else 'off'}"


def epoch_point_key(name: str, arrivals: int) -> str:
    """Stable JSON key for one epoch fast-path benchmark point."""
    return f"epoch/{name}/arrivals={arrivals}"


@dataclass(frozen=True)
class BenchPointResult:
    """Measured numbers for one benchmark point."""

    arrivals: int
    collocate: bool
    reference_ips: float
    optimized_ips: float
    speedup: float

    def as_json(self) -> dict:
        return {
            "reference_intervals_per_sec": round(self.reference_ips, 1),
            "optimized_intervals_per_sec": round(self.optimized_ips, 1),
            "speedup": round(self.speedup, 2),
        }


@dataclass(frozen=True)
class EpochPointResult:
    """Measured numbers for one epoch fast-path point.

    ``reference`` is the scalar interval loop of the *current* engine
    (``EngineConfig(epoch_fast_path=False)``), i.e. the PR 3 optimized
    path; ``optimized`` is the same engine with the decision-epoch
    batched path enabled.  JSON field names match
    :class:`BenchPointResult` so report consumers treat both uniformly.
    """

    name: str
    arrivals: int
    reference_ips: float
    optimized_ips: float
    speedup: float

    def as_json(self) -> dict:
        return {
            "reference_intervals_per_sec": round(self.reference_ips, 1),
            "optimized_intervals_per_sec": round(self.optimized_ips, 1),
            "speedup": round(self.speedup, 2),
        }


def _one_run(
    runner: Callable, arrivals: int, collocate: bool, n_intervals: int
) -> float:
    """One timed engine run; returns intervals/sec."""
    from repro.hardware.juno import juno_r1
    from repro.loadgen.traces import ConstantTrace
    from repro.policies.static import static_all_big
    from repro.workloads.memcached import memcached
    from repro.workloads.spec import spec_job_set

    workload = memcached()
    load = arrivals / workload.max_load_rps
    platform = juno_r1()
    manager = static_all_big(platform, collocate_batch=collocate)
    batch = spec_job_set("calculix") if collocate else None
    t0 = time.perf_counter()
    runner(
        platform,
        workload,
        ConstantTrace(load, n_intervals),
        manager,
        batch_jobs=batch,
        seed=3,
    )
    return n_intervals / (time.perf_counter() - t0)


def measure_point(
    arrivals: int,
    collocate: bool,
    *,
    n_intervals: int = DEFAULT_INTERVALS,
    pairs: int = DEFAULT_PAIRS,
) -> BenchPointResult:
    """Paired reference/optimized measurement of one benchmark point."""
    from repro.sim.engine import run_experiment
    from repro.sim.engine_reference import run_reference_experiment

    ratios: list[float] = []
    best_ref = 0.0
    best_opt = 0.0
    for _ in range(pairs):
        ref = _one_run(run_reference_experiment, arrivals, collocate, n_intervals)
        opt = _one_run(run_experiment, arrivals, collocate, n_intervals)
        ratios.append(opt / ref)
        best_ref = max(best_ref, ref)
        best_opt = max(best_opt, opt)
    return BenchPointResult(
        arrivals=arrivals,
        collocate=collocate,
        reference_ips=best_ref,
        optimized_ips=best_opt,
        speedup=statistics.median(ratios),
    )


def _one_epoch_run(arrivals: int, n_intervals: int, *, epoch: bool) -> float:
    """One timed scalar-or-epoch engine run; returns intervals/sec."""
    from repro.hardware.juno import juno_r1
    from repro.loadgen.traces import ConstantTrace
    from repro.policies.static import static_all_big
    from repro.sim.engine import EngineConfig, run_experiment
    from repro.workloads.memcached import memcached

    workload = memcached()
    load = arrivals / workload.max_load_rps
    platform = juno_r1()
    t0 = time.perf_counter()
    run_experiment(
        platform,
        workload,
        ConstantTrace(load, n_intervals),
        static_all_big(platform),
        engine_config=EngineConfig(epoch_fast_path=epoch),
        seed=3,
    )
    return n_intervals / (time.perf_counter() - t0)


def measure_epoch_point(
    name: str,
    arrivals: int,
    *,
    n_intervals: int = EPOCH_INTERVALS,
    pairs: int = DEFAULT_PAIRS,
) -> EpochPointResult:
    """Paired scalar/epoch measurement of one fast-path point."""
    ratios: list[float] = []
    best_ref = 0.0
    best_opt = 0.0
    for _ in range(pairs):
        ref = _one_epoch_run(arrivals, n_intervals, epoch=False)
        opt = _one_epoch_run(arrivals, n_intervals, epoch=True)
        ratios.append(opt / ref)
        best_ref = max(best_ref, ref)
        best_opt = max(best_opt, opt)
    return EpochPointResult(
        name=name,
        arrivals=arrivals,
        reference_ips=best_ref,
        optimized_ips=best_opt,
        speedup=statistics.median(ratios),
    )


def measure_all(
    *, n_intervals: int = DEFAULT_INTERVALS, pairs: int = DEFAULT_PAIRS
) -> dict[str, BenchPointResult | EpochPointResult]:
    """Measure every benchmark point; keys from :func:`point_key` and
    :func:`epoch_point_key`."""
    results: dict[str, BenchPointResult | EpochPointResult] = {
        point_key(arrivals, collocate): measure_point(
            arrivals, collocate, n_intervals=n_intervals, pairs=pairs
        )
        for arrivals, collocate in BENCH_POINTS
    }
    for name, arrivals in EPOCH_POINTS:
        results[epoch_point_key(name, arrivals)] = measure_epoch_point(
            name, arrivals, pairs=pairs
        )
    return results


def build_report(
    results: dict[str, BenchPointResult | EpochPointResult],
) -> dict:
    """The ``BENCH_engine.json`` payload for a set of measurements."""
    return {
        "schema": 1,
        "kernel_version": KERNEL_VERSION,
        "benchmark": (
            "interval-engine microbenchmark: memcached (sim_scale=25), "
            "static-big manager, constant load of N real arrivals per "
            "1 s interval; reference = pre-optimization engine "
            "(repro.sim.engine_reference); epoch/* points compare the "
            "current engine's scalar interval loop against its "
            "decision-epoch batched path"
        ),
        "protocol": (
            f"paired runs ({DEFAULT_PAIRS} pairs x {DEFAULT_INTERVALS} "
            f"intervals; epoch/* points {EPOCH_INTERVALS} intervals), "
            "speedup = median of per-pair ratios, "
            "intervals/sec = best over pairs"
        ),
        "environment": {
            "python": platform_module.python_version(),
            "numpy": np.__version__,
        },
        "points": {key: results[key].as_json() for key in sorted(results)},
    }


def write_report(
    path: str | Path,
    *,
    n_intervals: int = DEFAULT_INTERVALS,
    pairs: int = DEFAULT_PAIRS,
) -> dict:
    """Measure everything and write the JSON report; returns the payload."""
    results = measure_all(n_intervals=n_intervals, pairs=pairs)
    report = build_report(results)
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def load_report(path: str | Path) -> dict | None:
    """The committed report, or ``None`` when absent/unreadable."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None


def render_report(report: dict) -> str:
    """Human-readable summary of a report payload."""
    env = report["environment"]
    header = (
        f"Engine benchmark ({report['kernel_version']}, "
        f"python {env['python']}, numpy {env['numpy']}):"
    )
    lines = [header]
    for key, point in sorted(report["points"].items()):
        lines.append(
            f"  {key}: {point['reference_intervals_per_sec']:.0f} -> "
            f"{point['optimized_intervals_per_sec']:.0f} intervals/s "
            f"({point['speedup']:.2f}x)"
        )
    return "\n".join(lines)
