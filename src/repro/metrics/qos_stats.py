"""QoS summary statistics (paper Section 4.2.4).

Thin, composable helpers over :class:`~repro.sim.records.ExperimentResult`
for the two metrics every table in the paper reports -- *QoS guarantee*
(fraction of intervals meeting the target) and *QoS tardiness* (mean
``QoS_curr / QoS_target`` over violating intervals) -- plus a couple of
derived views used by individual figures.
"""

from __future__ import annotations

import numpy as np

from repro.sim.records import ExperimentResult


def qos_guarantee_percent(result: ExperimentResult) -> float:
    """QoS guarantee as a percentage, as printed in the paper's tables."""
    return result.qos_guarantee() * 100.0


def qos_violations_percent(result: ExperimentResult) -> float:
    """QoS violations as a percentage (Figure 10's bars)."""
    return (1.0 - result.qos_guarantee()) * 100.0


def mean_tardiness(result: ExperimentResult) -> float:
    """Mean tardiness over violating intervals (Table 3)."""
    return result.qos_tardiness()


def tardiness_series(result: ExperimentResult) -> np.ndarray:
    """Per-interval ``QoS_curr / QoS_target`` (Figure 8's bottom panel)."""
    return result.tails_ms / result.target_latency_ms


def violation_run_lengths(result: ExperimentResult) -> list[int]:
    """Lengths of consecutive violation streaks, longest effects first.

    Long streaks indicate capacity mis-sizing or slow recovery; isolated
    single-interval violations indicate noise or migrations.  Useful when
    diagnosing a policy's failure mode.
    """
    runs: list[int] = []
    current = 0
    for observation in result:
        if observation.qos_met:
            if current:
                runs.append(current)
            current = 0
        else:
            current += 1
    if current:
        runs.append(current)
    return sorted(runs, reverse=True)
