"""Per-policy summaries: the rows of the paper's Table 3."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.records import ExperimentResult


@dataclass(frozen=True)
class PolicySummary:
    """One Table 3 row: a policy's QoS and energy outcome on one workload."""

    policy: str
    workload: str
    qos_guarantee_pct: float
    qos_tardiness: float
    energy_reduction_pct: float
    migration_events: int
    mean_power_w: float

    def render(self) -> str:
        """A fixed-width report line."""
        return (
            f"{self.policy:<20s} {self.workload:<10s} "
            f"QoS={self.qos_guarantee_pct:5.1f}%  tardiness={self.qos_tardiness:5.2f}  "
            f"energy_saved={self.energy_reduction_pct:5.1f}%  "
            f"migrations={self.migration_events:4d}  power={self.mean_power_w:4.2f}W"
        )


def summarize(
    result: ExperimentResult, baseline: ExperimentResult | None = None
) -> PolicySummary:
    """Summarize a run, optionally against an energy baseline.

    Without a baseline the energy reduction is reported as 0 (the paper's
    convention: Static (all big cores) is its own reference).
    """
    reduction = (
        result.energy_reduction_vs(baseline) * 100.0 if baseline is not None else 0.0
    )
    return PolicySummary(
        policy=result.manager_name,
        workload=result.workload_name,
        qos_guarantee_pct=result.qos_guarantee() * 100.0,
        qos_tardiness=result.qos_tardiness(),
        energy_reduction_pct=reduction,
        migration_events=result.migration_events(),
        mean_power_w=result.mean_power_w(),
    )
