"""Energy accounting helpers.

The paper reports energy *reduction* relative to the Static (all big
cores) mapping (Table 3) and energy *consumption normalized to static*
(Figure 11), plus throughput-per-watt efficiency (Figure 2).
"""

from __future__ import annotations

import numpy as np

from repro.sim.records import ExperimentResult


def energy_reduction_percent(
    result: ExperimentResult, baseline: ExperimentResult
) -> float:
    """Energy saved relative to a baseline run, percent (Table 3)."""
    return result.energy_reduction_vs(baseline) * 100.0


def normalized_energy(result: ExperimentResult, baseline: ExperimentResult) -> float:
    """Energy as a fraction of the baseline's (Figure 11, bottom)."""
    base = baseline.total_energy_j()
    if base <= 0:
        raise ValueError("baseline consumed no energy")
    return result.total_energy_j() / base


def throughput_per_watt(result: ExperimentResult) -> float:
    """Mean requests per second per watt (Figure 2's y axis)."""
    power = result.mean_power_w()
    if power <= 0:
        raise ValueError("run reports no power")
    return float(np.mean(result.arrival_rps)) / power


def mean_power_percent_of(result: ExperimentResult, reference_w: float) -> np.ndarray:
    """Per-interval power as a percentage of a reference (Figure 1)."""
    if reference_w <= 0:
        raise ValueError("reference_w must be positive")
    return result.powers_w / reference_w * 100.0
