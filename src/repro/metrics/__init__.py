"""Summary metrics: QoS guarantee/tardiness and energy accounting."""

from repro.metrics.energy import (
    energy_reduction_percent,
    mean_power_percent_of,
    normalized_energy,
    throughput_per_watt,
)
from repro.metrics.qos_stats import (
    mean_tardiness,
    qos_guarantee_percent,
    qos_violations_percent,
    tardiness_series,
    violation_run_lengths,
)
from repro.metrics.summary import PolicySummary, summarize

__all__ = [
    "PolicySummary",
    "energy_reduction_percent",
    "mean_power_percent_of",
    "mean_tardiness",
    "normalized_energy",
    "qos_guarantee_percent",
    "qos_violations_percent",
    "summarize",
    "tardiness_series",
    "throughput_per_watt",
    "violation_run_lengths",
]
