"""Static mapping policies.

The paper's reference points: *Static (all big cores)* pins the
latency-critical workload to both big cores at maximum DVFS (the safest,
most power-hungry choice -- energy savings are reported against it), and
*Static (all small cores)* pins it to the four small cores (the cheapest,
QoS-violating choice).  In collocated experiments the static policy also
runs batch jobs on the cores it does not use (Figure 11's baseline).
"""

from __future__ import annotations

from repro.hardware.soc import Platform
from repro.hardware.topology import Configuration
from repro.policies.base import Decision, TaskManager, resolve_decision


class StaticPolicy(TaskManager):
    """Always apply one fixed configuration."""

    def __init__(
        self,
        config: Configuration,
        *,
        collocate_batch: bool = False,
        name: str | None = None,
    ):
        super().__init__()
        self._config = config
        self._collocate = collocate_batch
        self._decision: Decision | None = None
        self.name = name or f"static-{config.label}"

    def start(self, ctx) -> None:
        super().start(ctx)
        self._decision = None  # re-resolve against the new run's platform

    def decide(self) -> Decision:
        # The decision never changes; returning the same object lets the
        # engine's repeat-decision fast path skip even the equality check.
        if self._decision is None:
            self._decision = resolve_decision(
                self.ctx.platform, self._config, collocate_batch=self._collocate
            )
        return self._decision

    def stable_horizon(self, offered_loads) -> int:
        # A static mapping never changes its mind: the whole remaining
        # run is one decision epoch.
        return len(offered_loads)

    def epoch_continue(self, measured_load: float) -> bool:
        return True


def static_all_big(
    platform: Platform, *, collocate_batch: bool = False
) -> StaticPolicy:
    """Static (all big cores) at maximum DVFS -- the paper's energy baseline."""
    config = Configuration(
        n_big=platform.big.n_cores,
        n_small=0,
        big_freq_ghz=platform.big.max_freq_ghz,
        small_freq_ghz=None,
    )
    return StaticPolicy(config, collocate_batch=collocate_batch, name="static-big")


def static_all_small(
    platform: Platform, *, collocate_batch: bool = False
) -> StaticPolicy:
    """Static (all small cores) -- cheap but QoS-violating at high load."""
    config = Configuration(
        n_big=0,
        n_small=platform.small.n_cores,
        big_freq_ghz=None,
        small_freq_ghz=platform.small.max_freq_ghz,
    )
    return StaticPolicy(config, collocate_batch=collocate_batch, name="static-small")
