"""Task-manager interface shared by Hipster and every baseline.

A manager sees the system exactly the way the paper's user-space runtime
does: once per monitoring interval it receives an
:class:`~repro.sim.records.IntervalObservation` and, before the next
interval starts, must produce a :class:`Decision` -- the latency-critical
configuration, the operating point of each cluster, and whether batch jobs
run on the leftover cores.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.hardware.soc import Platform
from repro.hardware.topology import Configuration, validate_configuration
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - break the sim <-> policies import cycle
    from repro.sim.records import IntervalObservation
from repro.workloads.base import LatencyCriticalWorkload


@dataclass(frozen=True)
class Decision:
    """What to apply for the upcoming monitoring interval."""

    config: Configuration
    big_freq_ghz: float
    small_freq_ghz: float
    run_batch: bool = False

    def __post_init__(self) -> None:
        if self.config.big_freq_ghz is not None and (
            self.big_freq_ghz != self.config.big_freq_ghz
        ):
            raise ValueError(
                "big cluster hosts latency-critical cores; its frequency is "
                "fixed by the configuration"
            )
        if self.config.small_freq_ghz is not None and (
            self.small_freq_ghz != self.config.small_freq_ghz
        ):
            raise ValueError(
                "small cluster hosts latency-critical cores; its frequency is "
                "fixed by the configuration"
            )


def resolve_decision(
    platform: Platform,
    config: Configuration,
    *,
    collocate_batch: bool,
) -> Decision:
    """Turn a configuration choice into a full decision (Algorithm 2, 8-13).

    Clusters hosting latency-critical cores run at the configuration's
    operating point (one DVFS domain per cluster).  A cluster with no
    latency-critical core is raced to its maximum operating point when
    batch jobs will use it, and parked at its minimum otherwise
    (HipsterIn's "lowest DVFS for the remaining cores").
    """
    validate_configuration(platform, config)
    if config.big_freq_ghz is not None:
        big_freq = config.big_freq_ghz
    else:
        big_freq = (
            platform.big.max_freq_ghz if collocate_batch else platform.big.min_freq_ghz
        )
    if config.small_freq_ghz is not None:
        small_freq = config.small_freq_ghz
    else:
        small_freq = (
            platform.small.max_freq_ghz
            if collocate_batch
            else platform.small.min_freq_ghz
        )
    return Decision(
        config=config,
        big_freq_ghz=big_freq,
        small_freq_ghz=small_freq,
        run_batch=collocate_batch,
    )


@dataclass
class ManagerContext:
    """Everything a manager may legitimately know before the run starts."""

    platform: Platform
    workload: LatencyCriticalWorkload
    interval_s: float
    rng: np.random.Generator
    batch_present: bool = False


class TaskManager(abc.ABC):
    """Interval-granularity controller of core mapping and DVFS."""

    #: Human-readable policy name, used in reports.
    name: str = "manager"

    def __init__(self) -> None:
        self._ctx: ManagerContext | None = None

    @property
    def ctx(self) -> ManagerContext:
        """The run context; available after :meth:`start`."""
        if self._ctx is None:
            raise RuntimeError("manager not started; the engine calls start() first")
        return self._ctx

    def start(self, ctx: ManagerContext) -> None:
        """Bind the manager to a run.  Subclasses extend, not replace."""
        self._ctx = ctx

    @abc.abstractmethod
    def decide(self) -> Decision:
        """Choose the decision for the upcoming interval."""

    def observe(self, observation: "IntervalObservation") -> None:
        """Digest the interval that just finished (optional).

        The engine hands a lazily decoded row view
        (:class:`~repro.sim.records.ObservationRowView`) with the same
        attribute surface as :class:`~repro.sim.records.
        IntervalObservation`; every field reads as a plain Python
        scalar, so managers cannot tell the difference.
        """

    # ------------------------------------------------------------------
    # epoch fast-path contract (optional)
    # ------------------------------------------------------------------
    #
    # The engine's decision-epoch fast path evaluates a run of intervals
    # in one vectorized pass *without* calling decide()/observe() at each
    # boundary, replaying observe() once the epoch commits.  A manager
    # opts in by overriding BOTH hooks below; doing so promises that
    #
    # * decide() and observe() are pure and rng-free: decide() depends
    #   only on state that observe() derives from the previous interval's
    #   ``measured_load``, so deferred observe() replay is invisible;
    # * epoch_continue(m) returns True only if, after observing a
    #   measured load of ``m``, the next decide() would return a decision
    #   equal to the one already applied.
    #
    # Feedback-driven policies (Octopus-Man's ladder, Hipster's learner)
    # react to tail latency and must keep the defaults: a horizon of one
    # interval and no continuation, which pins them to the scalar path.

    def stable_horizon(self, offered_loads: "Sequence[float]") -> int:
        """Upper bound on upcoming intervals with a provably equal decision.

        Called right after :meth:`decide`, with the deterministic trace
        lookahead ``offered_loads`` (one offered-load fraction per
        upcoming interval, the current one first).  The returned horizon
        is a *hint* capping the epoch length; the epoch still validates
        every step through :meth:`epoch_continue` before drawing the
        next interval, because decisions may feed on the stochastic
        measured load rather than the offered one.  The default claims
        nothing, keeping the manager on the scalar path.
        """
        return 1

    def epoch_continue(self, measured_load: float) -> bool:
        """Whether the applied decision survives observing ``measured_load``.

        The engine calls this after drawing each epoch interval's
        arrivals (``measured_load`` is a pure function of the drawn
        arrival count) and *before* drawing the next interval, so a
        ``False`` simply ends the epoch with no rollback -- the rng
        stream never runs ahead of a validated decision.
        """
        return False

    def scenario_stats(self) -> dict[str, float | int]:
        """Manager-side statistics a scenario run should report.

        Managers are rebuilt inside batch workers, so any instance state
        an experiment needs (e.g. Hipster's phase switches) must be
        declared here -- the scenario layer ships the returned mapping
        back with the run's :class:`~repro.scenarios.spec.ScenarioOutcome`.
        """
        return {}


@dataclass
class DecisionLog:
    """Small helper recording a manager's decisions, for tests/reports."""

    decisions: list[Decision] = field(default_factory=list)

    def record(self, decision: Decision) -> Decision:
        self.decisions.append(decision)
        return decision

    @property
    def config_labels(self) -> list[str]:
        return [d.config.label for d in self.decisions]
