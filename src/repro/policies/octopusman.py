"""Octopus-Man baseline (Petrucci et al., HPCA 2015 -- the paper's [21]).

Octopus-Man is a feedback controller over a ladder of core mappings that
uses *exclusively* big or small cores at the highest DVFS.  When the
measured tail latency enters the danger zone it climbs to the next, more
powerful mapping; when it falls into the safe zone it steps down.  The
danger/safe thresholds are fractions of the QoS target (Section 3.3; the
paper sweeps them and keeps the combination with the best QoS guarantee).

The same state-machine core is reused by Hipster's heuristic mapper
(:mod:`repro.core.heuristic`) with a richer ladder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.topology import Configuration, octopus_man_ladder
from repro.policies.base import Decision, TaskManager, resolve_decision
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - break the sim <-> policies import cycle
    from repro.sim.records import IntervalObservation

#: Danger-zone threshold: climb when tail > QoS_D * target.
DEFAULT_QOS_DANGER = 0.85

#: Safe-zone threshold: descend when tail < QoS_S * target.  The paper
#: sweeps the danger/safe pair per deployment and keeps the combination
#: with the highest QoS guarantee (Section 4.1); these are the outcomes
#: of that sweep on the simulated platform (see
#: benchmarks/test_bench_ablations.py).  Web-Search needs a higher
#: safe threshold because its latency *floor* on small cores is already
#: ~0.4-0.5x the target: with a lower threshold the controller could
#: never descend into small-core states at any load.
DEFAULT_QOS_SAFE = 0.30

#: Per-workload swept safe thresholds (see above).
QOS_SAFE_BY_WORKLOAD = {"memcached": 0.30, "websearch": 0.45}


def default_qos_safe(workload_name: str) -> float:
    """The swept safe-zone threshold for a workload (or the generic one)."""
    return QOS_SAFE_BY_WORKLOAD.get(workload_name, DEFAULT_QOS_SAFE)


@dataclass
class LadderStateMachine:
    """The danger/safe feedback automaton shared by Octopus-Man and Hipster.

    ``index`` points into ``ladder`` (ordered from least to most capable).
    The measured tail is smoothed with an exponentially-weighted moving
    average before the zone comparison; per-interval tail estimates are
    noisy and an unfiltered controller steps on every noise excursion
    (the original Octopus-Man likewise filters its latency feedback).
    A latency above the *target* (an actual violation) bypasses the filter
    so real trouble is never averaged away.
    """

    ladder: tuple[Configuration, ...]
    qos_danger: float = DEFAULT_QOS_DANGER
    qos_safe: float = DEFAULT_QOS_SAFE
    smoothing: float = 0.5
    index: int = -1
    _ewma_ms: float | None = None

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ValueError("the ladder needs at least one configuration")
        if not 0.0 < self.qos_safe < self.qos_danger <= 1.0:
            raise ValueError("need 0 < QoS_S < QoS_D <= 1")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must be within (0, 1]")
        if self.index == -1:
            self.index = len(self.ladder) - 1

    @property
    def current(self) -> Configuration:
        """Configuration the automaton currently prescribes."""
        return self.ladder[self.index]

    def step(self, tail_latency_ms: float, target_ms: float) -> Configuration:
        """Advance the automaton on one interval's tail measurement."""
        if target_ms <= 0:
            raise ValueError("target must be positive")
        if self._ewma_ms is None:
            self._ewma_ms = tail_latency_ms
        else:
            self._ewma_ms = (
                self.smoothing * tail_latency_ms
                + (1.0 - self.smoothing) * self._ewma_ms
            )
        signal = max(
            self._ewma_ms, tail_latency_ms if tail_latency_ms > target_ms else 0.0
        )
        if signal > target_ms * self.qos_danger:
            self.index = min(self.index + 1, len(self.ladder) - 1)
            self._ewma_ms = min(self._ewma_ms, target_ms * self.qos_danger)
        elif signal < target_ms * self.qos_safe:
            self.index = max(self.index - 1, 0)
            self._ewma_ms = max(self._ewma_ms, target_ms * self.qos_safe)
        return self.current

    def seed_from(self, config: Configuration) -> None:
        """Point the automaton at (the nearest equivalent of) ``config``.

        Used when Hipster re-enters the learning phase: the heuristic
        resumes from where the Q-table left the system, not from the top.
        """
        for i, candidate in enumerate(self.ladder):
            if candidate == config:
                self.index = i
                return
        # Nearest by core counts, then frequency.
        def distance(candidate: Configuration) -> tuple[int, float]:
            cores = abs(candidate.n_big - config.n_big) + abs(
                candidate.n_small - config.n_small
            )
            freq = abs((candidate.big_freq_ghz or 0.0) - (config.big_freq_ghz or 0.0))
            return (cores, freq)

        self.index = min(
            range(len(self.ladder)), key=lambda i: distance(self.ladder[i])
        )


class OctopusMan(TaskManager):
    """The paper's state-of-the-art heterogeneous-scheduling baseline."""

    def __init__(
        self,
        *,
        qos_danger: float = DEFAULT_QOS_DANGER,
        qos_safe: float | None = None,
        collocate_batch: bool = False,
        include_single_big: bool = False,
    ):
        super().__init__()
        self.name = "octopus-man"
        self._qos_danger = qos_danger
        self._qos_safe = qos_safe
        self._collocate = collocate_batch
        self._include_single_big = include_single_big
        self._machine: LadderStateMachine | None = None

    def start(self, ctx) -> None:
        super().start(ctx)
        ladder = octopus_man_ladder(
            ctx.platform, include_single_big=self._include_single_big
        )
        safe = self._qos_safe or default_qos_safe(ctx.workload.name)
        self._machine = LadderStateMachine(
            ladder=ladder, qos_danger=self._qos_danger, qos_safe=safe
        )

    def decide(self) -> Decision:
        assert self._machine is not None
        return resolve_decision(
            self.ctx.platform, self._machine.current, collocate_batch=self._collocate
        )

    def observe(self, observation: "IntervalObservation") -> None:
        assert self._machine is not None
        self._machine.step(
            observation.tail_latency_ms, self.ctx.workload.target_latency_ms
        )

    def stable_horizon(self, offered_loads) -> int:
        # The ladder reacts to measured tail latency (EWMA feedback), so
        # no future decision is provable from the trace alone: stay on
        # the engine's scalar path.  Kept explicit rather than inherited
        # so the contract choice is visible at the policy.
        return 1
