"""Table-driven policy: replay a fixed load -> configuration mapping.

Figure 2c of the paper distills, for each workload, the most
energy-efficient QoS-meeting configuration per load level -- a per-workload
*state machine*.  Figure 3 then measures how much efficiency is lost when a
workload runs under the *other* workload's state machine.  This policy
replays such a mapping: each interval it looks up the configuration for
the currently offered load (no feedback, no learning).
"""

from __future__ import annotations

from typing import Sequence

from repro.hardware.topology import Configuration
from repro.policies.base import Decision, TaskManager, resolve_decision
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - break the sim <-> policies import cycle
    from repro.sim.records import IntervalObservation


class TableDrivenPolicy(TaskManager):
    """Apply ``config_for(load)`` from a static (load threshold, config) table.

    ``table`` maps ascending load upper-bounds to configurations: the entry
    ``(0.30, cfg)`` serves all loads up to 30%.  Loads above the last
    threshold use the last configuration.
    """

    def __init__(
        self,
        table: Sequence[tuple[float, Configuration]],
        *,
        collocate_batch: bool = False,
        name: str = "table-driven",
    ):
        super().__init__()
        if not table:
            raise ValueError("the table needs at least one entry")
        thresholds = [t for t, _ in table]
        if thresholds != sorted(thresholds):
            raise ValueError("table thresholds must be ascending")
        self._table = tuple((float(t), c) for t, c in table)
        self._collocate = collocate_batch
        self.name = name
        self._last_load = 0.0
        self._decided_config: Configuration | None = None

    def config_for(self, load: float) -> Configuration:
        """Configuration prescribed for an offered load fraction."""
        for threshold, config in self._table:
            if load <= threshold:
                return config
        return self._table[-1][1]

    def decide(self) -> Decision:
        config = self.config_for(self._last_load)
        self._decided_config = config
        return resolve_decision(
            self.ctx.platform, config, collocate_batch=self._collocate
        )

    def observe(self, observation: "IntervalObservation") -> None:
        self._last_load = observation.measured_load

    def stable_horizon(self, offered_loads) -> int:
        # The prefix of the (deterministic) trace lookahead that maps to
        # the decided configuration's load bucket.  Only a hint: decide()
        # feeds on *measured* load, so every epoch step is re-validated
        # against the drawn arrivals through epoch_continue().
        config = self._decided_config
        horizon = 0
        for load in offered_loads:
            if self.config_for(float(load)) is not config:
                break
            horizon += 1
        return max(horizon, 1)

    def epoch_continue(self, measured_load: float) -> bool:
        # The table holds one Configuration object per bucket, so bucket
        # stability is object identity of the lookup result.
        return self.config_for(measured_load) is self._decided_config
