"""Task-manager interface and the paper's baseline policies."""

from repro.policies.base import (
    Decision,
    DecisionLog,
    ManagerContext,
    TaskManager,
    resolve_decision,
)
from repro.policies.octopusman import (
    DEFAULT_QOS_DANGER,
    DEFAULT_QOS_SAFE,
    LadderStateMachine,
    OctopusMan,
    default_qos_safe,
)
from repro.policies.static import StaticPolicy, static_all_big, static_all_small
from repro.policies.table_driven import TableDrivenPolicy

__all__ = [
    "DEFAULT_QOS_DANGER",
    "DEFAULT_QOS_SAFE",
    "Decision",
    "DecisionLog",
    "LadderStateMachine",
    "ManagerContext",
    "OctopusMan",
    "StaticPolicy",
    "TableDrivenPolicy",
    "TaskManager",
    "default_qos_safe",
    "resolve_decision",
    "static_all_big",
    "static_all_small",
]
