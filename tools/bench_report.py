#!/usr/bin/env python
"""Regenerate ``BENCH_engine.json`` at the repo root.

Standalone wrapper around :mod:`repro.sim.bench` for environments where
the package is not installed::

    python tools/bench_report.py [output.json]

Equivalent to ``hipster-repro bench``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv: list[str]) -> int:
    from repro.sim.bench import render_report, write_report

    output = argv[0] if argv else str(REPO_ROOT / "BENCH_engine.json")
    report = write_report(output)
    print(render_report(report))
    print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
