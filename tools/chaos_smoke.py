#!/usr/bin/env python
"""Execution-chaos smoke: the full CLI run must survive injected faults.

Four in-process invocations of the acceptance command
(``all --quick --seed S``):

1. **golden** -- fault-free, serial: the reference stdout bytes.
2. **crash/hang chaos** -- parallel, with deterministic worker crashes
   (and a sprinkle of hangs kept short by a tightened watchdog) injected
   by :mod:`repro.sim.chaos`.  Must exit 0 with stdout byte-identical
   to the golden run.
3. **cache populate** -- fault-free, parallel, against a fresh on-disk
   cache (the corruption victim).
4. **corrupted cache** -- the manifest tail is truncated, a record is
   scribbled and per-key pickles are damaged
   (:func:`repro.sim.chaos.corrupt_cache`); the rerun must quarantine
   the damage, recompute, exit 0 and stay byte-identical.

A JSON summary (the CI artifact) records per-run exit codes, wall
times, fault markers and the byte-identity verdicts.  Exits non-zero
on any violation.

Standalone (no install needed)::

    python tools/chaos_smoke.py --seed 0 --jobs 2 --output chaos-smoke.json
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import tempfile
import time
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Supervisor overrides for the chaos runs: plenty of rebuild headroom
#: (rate-based crashes can strike many chunks) and a watchdog tight
#: enough that an injected hang costs seconds, not an hour.  Legit
#: chunks in ``all --quick`` finish in well under a second, so a 15 s
#: deadline has an order of magnitude of CI-jitter margin.
_CHAOS_ENV = {
    "REPRO_MAX_POOL_REBUILDS": "10000",
    "REPRO_TIMEOUT_FLOOR_S": "15",
    "REPRO_TIMEOUT_PER_COST_S": "0",
    "REPRO_BACKOFF_CAP_S": "0.2",
}


def _cli_run(argv: list[str]) -> tuple[int, bytes, str, float]:
    """One in-process CLI invocation: (exit, stdout bytes, stderr, wall)."""
    from repro.cli import main

    out, err = io.StringIO(), io.StringIO()
    t0 = time.perf_counter()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(argv)
    wall = time.perf_counter() - t0
    return code, out.getvalue().encode(), err.getvalue(), wall


def _with_env(env: dict[str, str]):
    """Context manager: apply env overrides, restore on exit."""
    from contextlib import contextmanager

    @contextmanager
    def _ctx():
        saved = {k: os.environ.get(k) for k in env}
        os.environ.update(env)
        try:
            yield
        finally:
            for k, v in saved.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v

    return _ctx()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--output", default="chaos-smoke.json")
    args = parser.parse_args(argv)

    from repro.sim import chaos

    base_cmd = ["all", "--quick", "--seed", str(args.seed)]
    summary: dict = {"seed": args.seed, "jobs": args.jobs, "runs": []}
    failures: list[str] = []

    def record(name: str, code: int, out: bytes, err: str, wall: float,
               golden: bytes | None) -> bytes:
        identical = None if golden is None else out == golden
        summary["runs"].append(
            {
                "name": name,
                "exit_code": code,
                "wall_s": round(wall, 2),
                "stdout_bytes": len(out),
                "identical_to_golden": identical,
                "stderr_tail": err.strip().splitlines()[-6:],
            }
        )
        if code != 0:
            failures.append(f"{name}: exit code {code}")
        if identical is False:
            failures.append(f"{name}: stdout differs from golden run")
        print(f"[chaos-smoke] {name}: exit={code} wall={wall:.1f}s "
              f"stdout={len(out)}B identical={identical}")
        return out

    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        tmp_path = Path(tmp)

        code, out, err, wall = _cli_run(base_cmd)
        golden = record("golden-serial", code, out, err, wall, None)

        # -- crash/hang chaos, parallel ---------------------------------
        state_dir = tmp_path / "chaos-state"
        config = chaos.ChaosConfig(
            seed=args.seed,
            state_dir=str(state_dir),
            crash_rate=24,   # a handful of worker crashes across the run
            hang_rate=150,   # and (usually) one or two watchdog trips
            hang_s=120.0,    # far past the 15 s deadline, cut by SIGKILL
        )
        with _with_env(_CHAOS_ENV), chaos.active_config(config):
            code, out, err, wall = _cli_run(
                base_cmd + ["--jobs", str(args.jobs)]
            )
        record("crash-hang-chaos", code, out, err, wall, golden)
        markers = chaos.fired_markers(state_dir)
        summary["fired_faults"] = markers
        if not markers:
            failures.append(
                "crash-hang-chaos: no fault fired (rates too low for "
                "this seed -- the run proved nothing)"
            )

        # -- cache corruption -------------------------------------------
        cache_dir = tmp_path / "cache"
        code, out, err, wall = _cli_run(
            base_cmd + ["--jobs", str(args.jobs), "--cache-dir", str(cache_dir)]
        )
        record("cache-populate", code, out, err, wall, golden)
        report = chaos.corrupt_cache(cache_dir, args.seed)
        summary["corruption"] = report.actions
        if not report:
            failures.append("corrupt_cache: nothing to corrupt (empty cache?)")
        code, out, err, wall = _cli_run(
            base_cmd + ["--jobs", str(args.jobs), "--cache-dir", str(cache_dir)]
        )
        record("corrupted-cache-rerun", code, out, err, wall, golden)
        quarantined = sorted(
            p.name for p in (cache_dir / "quarantine").glob("*")
        )
        summary["quarantined"] = quarantined

    summary["ok"] = not failures
    summary["failures"] = failures
    Path(args.output).write_text(json.dumps(summary, indent=2) + "\n")
    print(f"[chaos-smoke] wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"[chaos-smoke] FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"[chaos-smoke] OK: {len(summary['runs'])} runs, "
          f"{len(markers)} fault(s) fired, "
          f"{len(quarantined)} quarantined file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
