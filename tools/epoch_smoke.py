#!/usr/bin/env python
"""Long-horizon diurnal-trough smoke for the decision-epoch fast path.

Runs a table-driven manager over a multi-thousand-interval diurnal trace
-- the sweep-scale shape the epoch path accelerates, with troughs that
batch and peaks that fall back to the scalar loop -- twice: once with
``EngineConfig(epoch_fast_path=False)`` and once with the default
engine.  Every observation column must match byte for byte, and the
epoch path must actually have engaged.  Exits non-zero on any mismatch.

Standalone (no install needed)::

    python tools/epoch_smoke.py [n_intervals] [seed]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv: list[str]) -> int:
    import numpy as np

    from repro.hardware.juno import juno_r1
    from repro.hardware.topology import Configuration
    from repro.loadgen.diurnal import DiurnalTrace
    from repro.policies.table_driven import TableDrivenPolicy
    from repro.sim.engine import EngineConfig, IntervalSimulator
    from repro.sim.records import POOLED_FIELDS, SCALAR_FIELDS
    from repro.workloads.memcached import memcached

    n_intervals = int(argv[0]) if argv else 4_000
    seed = int(argv[1]) if len(argv) > 1 else 3

    platform = juno_r1()

    def make_policy():
        # Thresholds sized so the diurnal trough sits in the small-core
        # buckets (long decision-stable epochs) and the peak escalates.
        return TableDrivenPolicy(
            [
                (0.1, Configuration(0, 2, None, 0.65)),
                (0.3, Configuration(0, 4, None, 0.65)),
                (1.0, Configuration(2, 0, 1.15, None)),
            ]
        )

    def run(epoch: bool):
        sim = IntervalSimulator(
            platform,
            memcached(),
            DiurnalTrace(
                duration_s=float(n_intervals),
                min_load=0.02,
                seed=seed,
            ),
            make_policy(),
            engine_config=EngineConfig(epoch_fast_path=epoch),
            seed=seed,
        )
        t0 = time.perf_counter()
        result = sim.run()
        elapsed = time.perf_counter() - t0
        return result._table, sim, elapsed

    table_scalar, sim_scalar, t_scalar = run(epoch=False)
    table_epoch, sim_epoch, t_epoch = run(epoch=True)

    status = 0
    if sim_scalar.epochs_run != 0:
        print("FAIL: scalar run used the epoch path")
        status = 1
    if sim_epoch.epochs_run == 0:
        print("FAIL: epoch path never engaged over the diurnal trough")
        status = 1

    for field in SCALAR_FIELDS:
        if table_scalar.column(field).tobytes() != table_epoch.column(field).tobytes():
            bad = np.flatnonzero(
                ~(table_scalar.column(field) == table_epoch.column(field))
            )[:5]
            print(
                f"FAIL: column {field} differs at rows {bad.tolist()}: "
                f"scalar={table_scalar.column(field)[bad]!r} "
                f"epoch={table_epoch.column(field)[bad]!r}"
            )
            status = 1
    for field in POOLED_FIELDS:
        scalar_vals = [repr(v) for v in table_scalar.column(field)]
        epoch_vals = [repr(v) for v in table_epoch.column(field)]
        if scalar_vals != epoch_vals:
            print(f"FAIL: pooled column {field} differs")
            status = 1

    share = sim_epoch.epoch_intervals / n_intervals
    print(
        f"epoch smoke: {n_intervals} intervals, seed {seed}: "
        f"{sim_epoch.epochs_run} epochs covering "
        f"{sim_epoch.epoch_intervals} intervals ({share:.0%}), "
        f"scalar {n_intervals / t_scalar:,.0f} iv/s vs "
        f"epoch {n_intervals / t_epoch:,.0f} iv/s "
        f"({t_scalar / t_epoch:.2f}x)"
    )
    print("byte-identity " + ("OK" if status == 0 else "FAILED"))
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
