"""Benchmark: fleet expansion and an 8-node fleet run.

Fleet expansion (trace split + per-node spec construction) must stay
cheap relative to the node runs it feeds into the pool, and a small
fleet over a short day bounds the end-to-end cost of the CI smoke step.
"""

from __future__ import annotations

import pytest

from repro.fleet import FleetSpec
from repro.scenarios import TraceSpec
from repro.sim.batch import BatchRunner


def _fleet(n_nodes: int) -> FleetSpec:
    return FleetSpec(
        workload="memcached",
        trace=TraceSpec.diurnal(420.0, seed=11),
        manager="static-big",
        n_nodes=n_nodes,
        balancer="least-loaded",
        seed=3,
    )


@pytest.mark.benchmark(group="fleet")
def test_expand_64_nodes(benchmark):
    """Splitting a 420 s day across 64 nodes is pure bookkeeping."""
    spec = _fleet(64)
    nodes = benchmark(spec.node_specs)
    assert len(nodes) == 64


@pytest.mark.benchmark(group="fleet")
def test_fleet_run_8_nodes(benchmark):
    """An 8-node constant-load fleet end to end (serial, uncached)."""
    spec = FleetSpec(
        workload="memcached",
        trace=TraceSpec.constant(0.6, 30.0),
        manager="static-big",
        n_nodes=8,
        seed=3,
    )
    outcome = benchmark.pedantic(
        lambda: spec.run(BatchRunner()), rounds=3, iterations=1
    )
    assert outcome.n_nodes == 8
