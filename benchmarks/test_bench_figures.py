"""Benchmarks regenerating every figure of the paper's evaluation.

Each benchmark runs the figure's quick setting once per iteration and
asserts the figure's qualitative claim, so the suite doubles as a
reproduction smoke test with timing.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig01_diurnal_power,
    fig02_efficiency,
    fig05_heuristic_traces,
    fig06_hipsterin_memcached,
    fig07_hipsterin_websearch,
    fig08_load_ramp,
    fig09_learning_time,
    fig10_bucket_size,
    fig11_collocation,
)


@pytest.mark.benchmark(group="figures")
def test_fig01_diurnal_power(benchmark):
    result = benchmark.pedantic(
        lambda: fig01_diurnal_power.run(quick=True), rounds=1, iterations=1
    )
    assert result.min_power_percent > 50.0  # energy-proportionality gap


@pytest.mark.benchmark(group="figures")
def test_fig02_memcached(benchmark):
    result = benchmark.pedantic(
        lambda: fig02_efficiency.run("memcached", quick=True), rounds=1, iterations=1
    )
    assert result.mean_efficiency_gain() >= 1.0


@pytest.mark.benchmark(group="figures")
def test_fig02_websearch(benchmark):
    result = benchmark.pedantic(
        lambda: fig02_efficiency.run("websearch", quick=True), rounds=1, iterations=1
    )
    assert result.mean_efficiency_gain() >= 1.0


@pytest.mark.benchmark(group="figures")
def test_fig05_memcached(benchmark):
    result = benchmark.pedantic(
        lambda: fig05_heuristic_traces.run("memcached", quick=True),
        rounds=1,
        iterations=1,
    )
    assert result.mixed_config_intervals("hipster-heuristic") > 0
    assert result.mixed_config_intervals("octopus-man") == 0


@pytest.mark.benchmark(group="figures")
def test_fig06_hipsterin_memcached(benchmark):
    result = benchmark.pedantic(
        lambda: fig06_hipsterin_memcached.run(quick=True), rounds=1, iterations=1
    )
    assert result.result.qos_guarantee() > 0.75


@pytest.mark.benchmark(group="figures")
def test_fig07_hipsterin_websearch(benchmark):
    result = benchmark.pedantic(
        lambda: fig07_hipsterin_websearch.run(quick=True), rounds=1, iterations=1
    )
    assert result.exploitation.qos_guarantee() > result.learning.qos_guarantee() - 0.02


@pytest.mark.benchmark(group="figures")
def test_fig08_load_ramp(benchmark):
    result = benchmark.pedantic(
        lambda: fig08_load_ramp.run(quick=True), rounds=1, iterations=1
    )
    assert result.tardiness_ratio() > 1.0  # paper: HipsterIn 3.7x lower


@pytest.mark.benchmark(group="figures")
def test_fig09_learning_time(benchmark):
    result = benchmark.pedantic(
        lambda: fig09_learning_time.run(quick=True), rounds=1, iterations=1
    )
    assert result.late_improvement() > 0.0


@pytest.mark.benchmark(group="figures")
def test_fig10_bucket_size(benchmark):
    result = benchmark.pedantic(
        lambda: fig10_bucket_size.run(quick=True), rounds=1, iterations=1
    )
    assert all(row.energy_reduction_pct > 0 for row in result.rows)


@pytest.mark.benchmark(group="figures")
def test_fig11_collocation(benchmark):
    result = benchmark.pedantic(
        lambda: fig11_collocation.run(quick=True), rounds=1, iterations=1
    )
    assert result.mean_qos("hipster-co") > result.mean_qos("octopus-man")
    assert result.mean_energy("hipster-co") < result.mean_energy("octopus-man")
