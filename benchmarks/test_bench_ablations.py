"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation flips one design knob and checks the expected direction,
quantifying why the default is what it is:

* danger/safe thresholds (the paper's own per-deployment sweep);
* the heuristic ladder (paper Figure 2c vs the measured Pareto frontier);
* the lookup-table learning-rate schedule (fixed alpha vs decay);
* guided exploration during exploitation (epsilon on/off);
* the migration penalty (the cost asymmetry driving the paper's story).
"""

from __future__ import annotations

import pytest

from repro.core.hipster import HipsterParams, hipster_in
from repro.hardware.juno import juno_r1
from repro.loadgen.diurnal import DiurnalTrace
from repro.policies.octopusman import OctopusMan
from repro.sim.engine import EngineConfig, run_experiment
from repro.workloads.memcached import memcached
from repro.workloads.websearch import websearch

_TRACE_S = 420.0
_LEARN_S = 150.0


def _run(workload, manager, *, seed=5, engine_config=None):
    platform = juno_r1()
    trace = DiurnalTrace(duration_s=_TRACE_S, seed=11)
    return run_experiment(
        platform, workload, trace, manager, seed=seed, engine_config=engine_config
    )


@pytest.mark.benchmark(group="ablations")
def test_ablation_thresholds(benchmark):
    """A too-wide safe zone makes the Octopus-Man controller oscillate."""

    def sweep():
        tight = _run(memcached(), OctopusMan(qos_safe=0.30))
        loose = _run(memcached(), OctopusMan(qos_safe=0.60))
        return tight, loose

    tight, loose = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert loose.migration_events() > tight.migration_events()
    assert loose.qos_guarantee() < tight.qos_guarantee()


@pytest.mark.benchmark(group="ablations")
def test_ablation_ladder(benchmark):
    """The paper's Figure 2c ladder must not be worse than the Pareto
    ladder for Web-Search, whose best high-load state (big-only at max
    DVFS) the Pareto frontier cannot express."""
    from repro.core.heuristic import HipsterHeuristicPolicy, pareto_ladder
    from repro.policies.octopusman import LadderStateMachine

    class ParetoHeuristic(HipsterHeuristicPolicy):
        def start(self, ctx):
            super().start(ctx)
            self._machine = LadderStateMachine(
                ladder=pareto_ladder(ctx.platform),
                qos_danger=self._machine.qos_danger,
                qos_safe=self._machine.qos_safe,
            )

    def sweep():
        paper = _run(websearch(), HipsterHeuristicPolicy())
        pareto = _run(websearch(), ParetoHeuristic())
        return paper, pareto

    paper, pareto = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert paper.qos_guarantee() >= pareto.qos_guarantee() - 0.03


@pytest.mark.benchmark(group="ablations")
def test_ablation_alpha_schedule(benchmark):
    """The decaying learning rate must not lose QoS versus fixed alpha
    (it exists to remove the fixed schedule's recency bias)."""

    def sweep():
        decay = _run(
            websearch(),
            hipster_in(
                HipsterParams(learning_duration_s=_LEARN_S, alpha_schedule="decay")
            ),
        )
        fixed = _run(
            websearch(),
            hipster_in(
                HipsterParams(learning_duration_s=_LEARN_S, alpha_schedule="fixed")
            ),
        )
        return decay, fixed

    decay, fixed = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert decay.qos_guarantee() >= fixed.qos_guarantee() - 0.05


@pytest.mark.benchmark(group="ablations")
def test_ablation_exploration(benchmark):
    """Guided exploration costs a bounded amount of QoS and must never
    lose energy-efficiency ground against no exploration."""

    def sweep():
        explore = _run(
            memcached(),
            hipster_in(HipsterParams(learning_duration_s=_LEARN_S, epsilon=0.04)),
        )
        greedy = _run(
            memcached(),
            hipster_in(HipsterParams(learning_duration_s=_LEARN_S, epsilon=0.0)),
        )
        return explore, greedy

    explore, greedy = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert explore.qos_guarantee() > greedy.qos_guarantee() - 0.06
    assert explore.mean_power_w() < greedy.mean_power_w() * 1.05


@pytest.mark.benchmark(group="ablations")
def test_ablation_migration_penalty(benchmark):
    """Without migration costs the oscillating baseline looks artificially
    good -- the cost asymmetry is what the paper's argument rests on."""

    def sweep():
        with_cost = _run(memcached(), OctopusMan(qos_safe=0.45))
        free = _run(
            memcached(),
            OctopusMan(qos_safe=0.45),
            engine_config=EngineConfig(migration_penalty_s=0.0),
        )
        return with_cost, free

    with_cost, free = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert free.qos_guarantee() >= with_cost.qos_guarantee()
