"""Micro-benchmark: vectorized vs per-request queue kernel.

``DispatchQueue.run_interval`` used to service requests one-by-one in a
Python loop; it now evaluates the FCFS Lindley recursion vectorized.
This benchmark records both kernels on identical inputs at increasing
arrival counts and asserts the headline speedup the refactor promises:
>= 5x at 10k+ requests per interval.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.sim.queueing import (
    DispatchQueue,
    lindley_completion_times,
    lindley_completion_times_reference,
)


def _kernel_inputs(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, 1.0, size=n))
    service = rng.exponential(1.0 / n, size=n)  # ~unit utilization
    return arrivals, service


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.benchmark(group="queue-kernel")
@pytest.mark.parametrize("n", [1_000, 10_000, 100_000])
def test_vectorized_kernel(benchmark, n):
    """Throughput of the new kernel (the benchmark-tracked number)."""
    arrivals, service = _kernel_inputs(n)
    result = benchmark(lindley_completion_times, arrivals, service, 0.0)
    np.testing.assert_allclose(
        result,
        lindley_completion_times_reference(arrivals, service, 0.0),
        rtol=1e-9,
    )


@pytest.mark.benchmark(group="queue-kernel")
def test_reference_kernel_10k(benchmark):
    """Throughput of the seed's per-request loop, for the old-vs-new record."""
    arrivals, service = _kernel_inputs(10_000)
    benchmark.pedantic(
        lindley_completion_times_reference,
        args=(arrivals, service, 0.0),
        rounds=3,
        iterations=1,
    )


def test_speedup_at_high_arrival_counts():
    """Acceptance criterion: >= 5x at >= 10k requests/interval."""
    arrivals, service = _kernel_inputs(10_000)
    old = _best_of(lambda: lindley_completion_times_reference(arrivals, service, 0.0))
    new = _best_of(lambda: lindley_completion_times(arrivals, service, 0.0))
    speedup = old / new
    print(f"\nqueue kernel speedup at 10k arrivals: {speedup:.1f}x")
    assert speedup >= 5.0


@pytest.mark.benchmark(group="queue-kernel")
def test_run_interval_end_to_end_10k(benchmark):
    """The kernel inside its real call path: one loaded interval with
    ~10k arrivals across six heterogeneous servers."""

    def one_interval():
        queue = DispatchQueue(rng=np.random.default_rng(7), balance_exponent=0.55)
        queue.reconfigure([1.0, 1.0, 0.4, 0.4, 0.4, 0.4], now=0.0)
        return queue.run_interval(
            0.0, 1.0, 10_000.0, lambda rng, n: rng.exponential(3e-4, size=n)
        )

    stats = benchmark.pedantic(one_interval, rounds=3, iterations=1)
    assert stats.arrivals > 5_000
