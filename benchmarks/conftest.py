"""Benchmark-suite configuration.

Every benchmark regenerates one paper artifact at the quick (compressed)
setting, asserts the paper's *shape* on the outcome, and reports the
wall-clock cost through pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only
"""

collect_ignore_glob: list[str] = []
