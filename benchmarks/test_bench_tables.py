"""Benchmarks regenerating the paper's tables."""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig03_cross_state_machine,
    table1_workloads,
    table2_characterization,
    table3_summary,
)


@pytest.mark.benchmark(group="tables")
def test_table1_workloads(benchmark):
    result = benchmark.pedantic(
        lambda: table1_workloads.run(quick=True), rounds=1, iterations=1
    )
    assert all(row.edge_ok for row in result.rows)


@pytest.mark.benchmark(group="tables")
def test_table2_characterization(benchmark):
    result = benchmark.pedantic(table2_characterization.run, rounds=3, iterations=1)
    assert result.big.power_all_cores_w == pytest.approx(2.30, abs=0.01)
    assert result.small.power_all_cores_w == pytest.approx(1.43, abs=0.01)


@pytest.mark.benchmark(group="tables")
def test_table3_summary(benchmark):
    result = benchmark.pedantic(
        lambda: table3_summary.run(quick=True), rounds=1, iterations=1
    )
    for workload in ("memcached", "websearch"):
        assert result.get("static-small", workload).qos_guarantee_pct < 80.0
        assert result.get("hipster-in", workload).energy_reduction_pct > 5.0


@pytest.mark.benchmark(group="tables")
def test_fig03_cross_state_machine(benchmark):
    """Figure 3 rides on the Table/Figure-2 sweeps: benchmarked here with a
    reduced load grid to keep the run bounded."""
    loads = (0.25, 0.47, 0.69, 0.91)
    result = benchmark.pedantic(
        lambda: fig03_cross_state_machine.run(quick=True, loads=loads),
        rounds=1,
        iterations=1,
    )
    # Cross-applying a foreign state machine must cost efficiency somewhere.
    losses = [result.worst_loss("memcached"), result.worst_loss("websearch")]
    assert max(losses) > 0.02
