"""Engine micro-benchmark: dense interval loop vs the reference engine.

PR 1 vectorized the queue kernel; this PR removed the per-interval Python
tax around it (string-dict plumbing, per-interval recomputation of
decision invariants, ``rng.choice`` overhead, ``np.quantile`` dispatch).
The benchmark measures end-to-end ``run_experiment`` throughput at the
production-scale operating points (Memcached time-dilated replica, 1k and
10k real arrivals per interval, with and without collocation) against the
preserved pre-optimization engine, exactly the way
``hipster-repro bench`` does.

Guard design: absolute intervals/sec vary ~2x across machines, so CI
asserts the *speedup ratio* (paired runs, median of per-pair ratios --
drift-immune and machine-comparable):

* a hard floor of 2x everywhere (the refactor can never quietly erode);
* the soft regression guard of the committed trajectory: measured
  speedup must not drop more than 25% below the number recorded in
  ``BENCH_engine.json``.

The trajectory numbers themselves (3-3.6x on the recording machine; see
``BENCH_engine.json``) are refreshed with ``hipster-repro bench``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.sim.bench import (
    BENCH_POINTS,
    BENCH_REPORT_NAME,
    EPOCH_POINTS,
    epoch_point_key,
    load_report,
    measure_epoch_point,
    measure_point,
    point_key,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Hard machine-independent floor on the speedup ratio.
MIN_SPEEDUP = 2.0

#: Soft guard: fraction of the committed speedup that must be retained.
REGRESSION_TOLERANCE = 0.75

#: Hard floor on the decision-epoch fast path over the scalar loop,
#: asserted on the steady-config point (the epoch path's weakest regime
#: that still batches; the trough points run well above it).
EPOCH_MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def committed_report():
    return load_report(REPO_ROOT / BENCH_REPORT_NAME)


@pytest.mark.parametrize(
    "arrivals,collocate",
    BENCH_POINTS,
    ids=[point_key(a, c) for a, c in BENCH_POINTS],
)
def test_engine_speedup(arrivals, collocate, committed_report):
    result = measure_point(arrivals, collocate, n_intervals=200, pairs=5)
    key = point_key(arrivals, collocate)
    print(
        f"\n{key}: {result.reference_ips:.0f} -> {result.optimized_ips:.0f} "
        f"intervals/s ({result.speedup:.2f}x)"
    )
    assert result.speedup >= MIN_SPEEDUP, (
        f"{key}: dense engine only {result.speedup:.2f}x over the reference"
    )
    if committed_report is not None:
        committed = committed_report["points"][key]["speedup"]
        floor = committed * REGRESSION_TOLERANCE
        assert result.speedup >= floor, (
            f"{key}: speedup {result.speedup:.2f}x dropped >25% below the "
            f"committed baseline {committed:.2f}x (floor {floor:.2f}x) -- "
            f"engine hot-path regression"
        )


@pytest.mark.parametrize(
    "name,arrivals",
    EPOCH_POINTS,
    ids=[epoch_point_key(n, a) for n, a in EPOCH_POINTS],
)
def test_epoch_fast_path_speedup(name, arrivals, committed_report):
    """Decision-epoch path vs the scalar loop of the same engine.

    The hard floor applies to the steady-config point only -- trough
    points swing more with machine noise, so they rely on the soft
    guard against the committed trajectory (and on the committed
    numbers being well above the floor).
    """
    result = measure_epoch_point(name, arrivals, n_intervals=1_000, pairs=5)
    key = epoch_point_key(name, arrivals)
    print(
        f"\n{key}: {result.reference_ips:.0f} -> {result.optimized_ips:.0f} "
        f"intervals/s ({result.speedup:.2f}x)"
    )
    if name == "steady":
        assert result.speedup >= EPOCH_MIN_SPEEDUP, (
            f"{key}: epoch fast path only {result.speedup:.2f}x over the "
            f"scalar interval loop"
        )
    else:
        assert result.speedup > 1.0, (
            f"{key}: epoch fast path is not faster than the scalar loop "
            f"({result.speedup:.2f}x)"
        )
    committed = (committed_report or {}).get("points", {}).get(key)
    if committed is not None:
        floor = committed["speedup"] * REGRESSION_TOLERANCE
        assert result.speedup >= floor, (
            f"{key}: speedup {result.speedup:.2f}x dropped >25% below the "
            f"committed baseline {committed['speedup']:.2f}x "
            f"(floor {floor:.2f}x) -- epoch-path regression"
        )


@pytest.mark.benchmark(group="interval-engine")
def test_engine_interval_throughput(benchmark):
    """Absolute intervals/sec of the optimized engine, tracked by
    pytest-benchmark (10k arrivals, collocated -- the heaviest point)."""
    from repro.hardware.juno import juno_r1
    from repro.loadgen.traces import ConstantTrace
    from repro.policies.static import static_all_big
    from repro.sim.engine import run_experiment
    from repro.workloads.memcached import memcached
    from repro.workloads.spec import spec_job_set

    workload = memcached()
    platform = juno_r1()

    def run():
        return run_experiment(
            platform,
            workload,
            ConstantTrace(10_000 / workload.max_load_rps, 200),
            static_all_big(platform, collocate_batch=True),
            batch_jobs=spec_job_set("calculix"),
            seed=3,
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) == 200
