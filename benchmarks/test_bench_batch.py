"""Batch-layer benchmark: persistent-pool runner vs per-call baseline.

PR 3 made one engine run 3-4x faster, which moved the ``all --quick`` /
fleet-sweep bottleneck up into the batch layer; this PR rebuilt that
layer (persistent worker pool, cost-aware LJF scheduling, two-tier
outcome cache).  The benchmark measures end-to-end batch throughput
against :class:`repro.sim.bench_batch.PerCallPoolRunner`, the preserved
pre-overhaul runner, exactly the way ``hipster-repro bench-batch``
does.

Guard design mirrors ``test_bench_engine.py``: absolute wall seconds
vary wildly across machines, so CI asserts the *speedup ratio* (paired
runs, median of per-pair ratios):

* per-point hard floors -- the warm-memory point (the sweep inner loop
  the overhaul targets) must stay >= 3x, the warm-start and
  warm-decode points must keep the columnar payload advantage over the
  pre-columnar dataclass-tuple format (the storage overhaul's target),
  and the compute-bound cold points must not regress beyond noise;
* the soft regression guard of the committed trajectory: measured
  speedup must not drop more than 25% below ``BENCH_batch.json``.

The trajectory numbers are refreshed with ``hipster-repro bench-batch``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.sim.bench_batch import (
    BENCH_REPORT_NAME,
    load_report,
    measure_fleet_cold,
    measure_fleet_warm_decode,
    measure_fleet_warm_memory,
    measure_fleet_warm_start,
    measure_grid_cold,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Hard machine-independent floors on the speedup ratio.  The cold
#: points are compute-bound (the engine does the same work either way),
#: so their floor only catches a real scheduling/caching regression,
#: not noise; the warm points are what the overhaul is *for*.
MIN_SPEEDUP = {
    "all-quick-grid/cold": 0.7,
    "fleet-64/cold": 0.7,
    "fleet-64/warm-memory": 3.0,
    # Warm starts pit the manifest scan + columnar decode against the
    # per-key open storm + dataclass-tuple decode; the committed point
    # sits well above 2x, so 1.5x only fires on a real read-path
    # regression, not filesystem noise.
    "fleet-64/warm-start": 1.5,
    # Pure payload decode has no filesystem noise at all: columnar
    # tables must stay comfortably ahead of per-interval dataclasses.
    "fleet-64/warm-decode": 2.0,
}

#: Soft guard: fraction of the committed speedup that must be retained.
REGRESSION_TOLERANCE = 0.75

#: Measurement effort per point: cold points re-simulate the whole
#: batch per pair, so they get fewer pairs than the cheap warm points.
MEASURES = {
    "all-quick-grid/cold": lambda: measure_grid_cold(pairs=1),
    "fleet-64/cold": lambda: measure_fleet_cold(pairs=1),
    "fleet-64/warm-memory": lambda: measure_fleet_warm_memory(pairs=2),
    "fleet-64/warm-start": lambda: measure_fleet_warm_start(pairs=2),
    "fleet-64/warm-decode": lambda: measure_fleet_warm_decode(pairs=2),
}


@pytest.fixture(scope="module")
def committed_report():
    return load_report(REPO_ROOT / BENCH_REPORT_NAME)


@pytest.mark.parametrize("key", sorted(MEASURES))
def test_batch_speedup(key, committed_report):
    result = MEASURES[key]()
    assert result.key == key
    print(
        f"\n{key}: {result.baseline_wall_s:.2f}s -> "
        f"{result.optimized_wall_s:.2f}s for {result.spec_requests} "
        f"spec request(s) ({result.speedup:.2f}x)"
    )
    assert result.speedup >= MIN_SPEEDUP[key], (
        f"{key}: persistent-pool runner only {result.speedup:.2f}x over "
        f"the per-call-pool baseline (floor {MIN_SPEEDUP[key]:.2f}x)"
    )
    if committed_report is not None and key in committed_report["points"]:
        committed = committed_report["points"][key]["speedup"]
        floor = committed * REGRESSION_TOLERANCE
        assert result.speedup >= floor, (
            f"{key}: speedup {result.speedup:.2f}x dropped >25% below the "
            f"committed baseline {committed:.2f}x (floor {floor:.2f}x) -- "
            f"batch-layer regression"
        )


@pytest.mark.benchmark(group="batch-layer")
def test_warm_redispatch_throughput(benchmark):
    """Absolute warm re-dispatch cost of the persistent runner, tracked
    by pytest-benchmark (8-node fleet batch served from the LRU tier)."""
    from repro.sim.batch import BatchRunner
    from repro.sim.bench_batch import bench_fleet_spec

    specs = list(bench_fleet_spec(8).node_specs())
    runner = BatchRunner()  # serial: the warm path never needs workers
    runner.run(specs)

    def redispatch():
        return runner.run(specs)

    outcomes = benchmark.pedantic(redispatch, rounds=5, iterations=2)
    assert len(outcomes) == len(specs)
    assert runner.cache_misses == len(specs)  # warm-up only; never again
