"""Load-spike stress test: how managers ride out a sudden traffic surge.

Section 2 of the paper motivates Hipster with sudden load spikes ("The
Tail at Scale"): a heuristic walking one ladder rung per interval is slow
to react, while a trained lookup table jumps straight to a configuration
that fits the new load.  This example hits Memcached with a 30% -> 95%
spike after a warm-up period and compares the tail-latency transient of
Octopus-Man and HipsterIn.

Run with::

    python examples/load_spike.py
"""

import numpy as np

from repro import (
    ConcatTrace,
    DiurnalTrace,
    HipsterParams,
    OctopusMan,
    SpikeTrace,
    hipster_in,
    juno_r1,
    memcached,
    run_experiment,
)
from repro.experiments.reporting import series_block

WARMUP_S = 420.0
SPIKE = SpikeTrace(
    base_level=0.30,
    spike_level=0.95,
    spike_start_s=30.0,
    spike_duration_s=60.0,
    duration_s=150.0,
)


def main() -> None:
    platform = juno_r1()
    workload = memcached()
    trace = ConcatTrace([DiurnalTrace(duration_s=WARMUP_S, seed=7), SPIKE])

    managers = {
        "octopus-man": OctopusMan(),
        "hipster-in": hipster_in(HipsterParams(learning_duration_s=300.0)),
    }
    print("Memcached 30% -> 95% load spike (after warm-up)\n")
    for name, manager in managers.items():
        result = run_experiment(platform, workload, trace, manager, seed=1)
        spike_window = result.slice(WARMUP_S)
        tardiness = spike_window.tails_ms / workload.target_latency_ms
        print(f"--- {name} ---")
        print(series_block("tardiness (1.0 = target)", tardiness))
        violations = int(np.sum(tardiness > 1.0))
        print(
            f"  violations during spike window: {violations}/{len(spike_window)} "
            f"intervals, worst tardiness {float(np.max(tardiness)):.1f}\n"
        )


if __name__ == "__main__":
    main()
