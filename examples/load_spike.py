"""Load-spike stress test: how managers ride out a sudden traffic surge.

Section 2 of the paper motivates Hipster with sudden load spikes ("The
Tail at Scale"): a heuristic walking one ladder rung per interval is slow
to react, while a trained lookup table jumps straight to a configuration
that fits the new load.  This example hits Memcached with a 30% -> 95%
spike after a warm-up period and compares the tail-latency transient of
Octopus-Man and HipsterIn -- built as explicit frozen specs and run
through the stable facade.

Run with::

    python examples/load_spike.py
"""

import numpy as np

from repro.api import open_runner, run_scenario
from repro.experiments.reporting import series_block
from repro.scenarios import ScenarioSpec, TraceSpec
from repro.scenarios.factories import build_workload

WARMUP_S = 420.0
TRACE = TraceSpec.concat(
    TraceSpec.diurnal(WARMUP_S, seed=7),
    TraceSpec(
        "spike",
        {
            "base_level": 0.30,
            "spike_level": 0.95,
            "spike_start_s": 30.0,
            "spike_duration_s": 60.0,
            "duration_s": 150.0,
        },
    ),
)


def main() -> None:
    specs = {
        "octopus-man": ScenarioSpec(
            workload="memcached", trace=TRACE, manager="octopus-man", seed=1
        ),
        "hipster-in": ScenarioSpec(
            workload="memcached",
            trace=TRACE,
            manager="hipster-in",
            manager_params={"learning_duration_s": 300.0},
            seed=1,
        ),
    }
    workload = build_workload("memcached")
    print("Memcached 30% -> 95% load spike (after warm-up)\n")
    with open_runner() as runner:
        for name, spec in specs.items():
            result = run_scenario(spec, runner=runner).result
            spike_window = result.slice(WARMUP_S)
            tardiness = spike_window.tails_ms / workload.target_latency_ms
            print(f"--- {name} ---")
            print(series_block("tardiness (1.0 = target)", tardiness))
            violations = int(np.sum(tardiness > 1.0))
            print(
                f"  violations during spike window: {violations}/{len(spike_window)} "
                f"intervals, worst tardiness {float(np.max(tardiness)):.1f}\n"
            )


if __name__ == "__main__":
    main()
