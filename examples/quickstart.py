"""Quickstart: run HipsterIn on Memcached over a compressed diurnal day.

This is the smallest end-to-end use of the library: build the calibrated
Juno R1 platform, pick a workload and a load trace, run a task manager,
and read the QoS/energy summary.

Run with::

    python examples/quickstart.py
"""

from repro import (
    DiurnalTrace,
    hipster_in,
    juno_r1,
    memcached,
    run_experiment,
    static_all_big,
)

def main() -> None:
    platform = juno_r1()
    workload = memcached()
    trace = DiurnalTrace(duration_s=600, seed=11)

    # The energy reference: both big cores pinned at maximum DVFS.
    baseline = run_experiment(
        platform, workload, trace, static_all_big(platform), seed=1
    )

    # HipsterIn: heuristic-guided learning, then Q-table exploitation.
    manager = hipster_in()
    result = run_experiment(platform, workload, trace, manager, seed=1)

    print(f"workload:        {workload.name} (p95 <= {workload.target_latency_ms} ms)")
    print(f"QoS guarantee:   {result.qos_guarantee() * 100:.1f}%")
    print(f"QoS tardiness:   {result.qos_tardiness():.2f}")
    print(f"mean power:      {result.mean_power_w():.2f} W "
          f"(static-big: {baseline.mean_power_w():.2f} W)")
    print(f"energy saved:    {result.energy_reduction_vs(baseline) * 100:.1f}%")
    print(f"migrations:      {result.migration_events()}")
    print(f"manager phase:   {manager.phase.value} "
          f"({manager.phase_switches} switches, "
          f"{len(manager.table)} lookup-table entries)")


if __name__ == "__main__":
    main()
