"""Quickstart: run HipsterIn on Memcached over a compressed diurnal day.

This is the smallest end-to-end use of the library, written against the
stable facade (:mod:`repro.api`): name a scenario family, let the
registry build the frozen spec, and read the QoS/energy summary off the
outcome.  Both runs share one runner, so the baseline and the policy
run are batched, cached and scheduled together.

Run with::

    python examples/quickstart.py
"""

from repro.api import open_runner, run_scenario
from repro.scenarios.factories import build_workload


def main() -> None:
    with open_runner() as runner:
        # The energy reference: both big cores pinned at maximum DVFS.
        baseline = run_scenario(
            "diurnal-policy",
            workload="memcached",
            manager="static-big",
            quick=True,
            runner=runner,
        )
        # HipsterIn: heuristic-guided learning, then Q-table exploitation.
        outcome = run_scenario(
            "diurnal-policy",
            workload="memcached",
            manager="hipster-in",
            quick=True,
            runner=runner,
        )

    result, reference = outcome.result, baseline.result
    workload = build_workload(outcome.spec.workload)
    print(f"scenario:        {outcome.spec.label}")
    print(f"workload:        {workload.name} (p95 <= {workload.target_latency_ms} ms)")
    print(f"QoS guarantee:   {result.qos_guarantee() * 100:.1f}%")
    print(f"QoS tardiness:   {result.qos_tardiness():.2f}")
    print(f"mean power:      {result.mean_power_w():.2f} W "
          f"(static-big: {reference.mean_power_w():.2f} W)")
    print(f"energy saved:    {result.energy_reduction_vs(reference) * 100:.1f}%")
    print(f"migrations:      {result.migration_events()}")
    print(f"phase switches:  {outcome.stat('phase_switches')}")


if __name__ == "__main__":
    main()
