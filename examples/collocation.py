"""Collocation scenario: Web-Search sharing the box with batch jobs.

Reproduces the paper's HipsterCo use case (Section 4.3): a
latency-critical Web-Search instance gets exactly the resources it needs,
while leftover cores run SPEC CPU2006-style batch programs at maximum
DVFS.  Compares three managers on QoS, batch throughput and energy.

Run with::

    python examples/collocation.py [program]

where ``program`` is one of the twelve SPEC CPU2006 names
(default: calculix).
"""

import sys

from repro import (
    DiurnalTrace,
    OctopusMan,
    hipster_co,
    juno_r1,
    run_experiment,
    spec_job_set,
    static_all_big,
    websearch,
)


def main(program: str = "calculix") -> None:
    platform = juno_r1()
    workload = websearch()
    trace = DiurnalTrace(duration_s=600, seed=11)
    jobs = spec_job_set(program)

    runs = {}
    managers = {
        "static (LC on big, batch on small)": static_all_big(
            platform, collocate_batch=True
        ),
        "octopus-man": OctopusMan(collocate_batch=True),
        "hipster-co": hipster_co(),
    }
    for name, manager in managers.items():
        runs[name] = run_experiment(
            platform, workload, trace, manager, batch_jobs=jobs, seed=1
        )

    static = runs["static (LC on big, batch on small)"]
    print(f"Web-Search + {program} on ARM Juno R1 ({len(static)} intervals)\n")
    header = f"{'manager':38s} {'QoS':>7s} {'batch IPS':>11s} {'energy':>8s}"
    print(header)
    print("-" * len(header))
    for name, result in runs.items():
        print(
            f"{name:38s} {result.qos_guarantee() * 100:6.1f}% "
            f"{result.batch_mean_ips() / static.batch_mean_ips():10.2f}x "
            f"{result.total_energy_j() / static.total_energy_j():7.2f}x"
        )
    print("\n(batch IPS and energy normalized to the static mapping)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "calculix")
