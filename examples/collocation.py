"""Collocation scenario: Web-Search sharing the box with batch jobs.

Reproduces the paper's HipsterCo use case (Section 4.3) through the
stable facade: the ``collocation`` family pins a latency-critical
Web-Search instance next to SPEC CPU2006-style batch programs, and the
three managers run through one shared runner so the grid is batched,
cached and scheduled together.

Run with::

    python examples/collocation.py [program]

where ``program`` is one of the twelve SPEC CPU2006 names
(default: calculix).
"""

import sys

from repro.api import open_runner, run_scenario

#: Manager name -> the manager_params its collocated variant needs.
MANAGERS = {
    "static-big": {"collocate_batch": True},
    "octopus-man": {"collocate_batch": True},
    "hipster-co": None,
}


def main(program: str = "calculix") -> None:
    runs = {}
    with open_runner() as runner:
        for name, manager_params in MANAGERS.items():
            runs[name] = run_scenario(
                "collocation",
                manager=name,
                program=program,
                manager_params=manager_params,
                quick=True,
                runner=runner,
            ).result

    static = runs["static-big"]
    print(f"Web-Search + {program} on ARM Juno R1 ({len(static)} intervals)\n")
    header = f"{'manager':38s} {'QoS':>7s} {'batch IPS':>11s} {'energy':>8s}"
    print(header)
    print("-" * len(header))
    for name, result in runs.items():
        print(
            f"{name:38s} {result.qos_guarantee() * 100:6.1f}% "
            f"{result.batch_mean_ips() / static.batch_mean_ips():10.2f}x "
            f"{result.total_energy_j() / static.total_energy_j():7.2f}x"
        )
    print("\n(batch IPS and energy normalized to the static mapping)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "calculix")
